//! The emulation engine: workload manager + driver (paper Fig. 3).
//!
//! The workload manager "begins by capturing the system clock as the
//! reference start time", then loops: inject applications whose arrival
//! time has passed, monitor the completion status of running tasks via
//! the resource handlers, update the ready task list with tasks whose
//! predecessors have all completed, run the user-selected scheduling
//! policy on the ready list, and communicate selected tasks to the
//! resource managers. Scheduling overhead is accumulated exactly over
//! those phases — monitoring, ready-queue update, policy execution, and
//! dispatch — which is what Fig. 10b reports.
//!
//! # Timing modes
//!
//! * [`TimingMode::WallClock`] — the paper's literal behaviour: emulation
//!   time is host wall time, PE threads embody modeled durations in real
//!   time. Faithful, but on a small host the emulated PE count is limited
//!   by real cores.
//! * [`TimingMode::Modeled`] — the emulation clock is virtual: kernels
//!   still execute functionally on real threads (outputs are real), but
//!   task durations are charged from the cost model and the clock only
//!   advances when every in-flight task has reported (a conservative
//!   parallel discrete-event scheme). This is what lets a 2-core host
//!   emulate a 7-PE DSSoC with correct *relative* timing — and it is
//!   deterministic when paired with a [`CostTable`] and
//!   [`OverheadMode::Fixed`]/[`OverheadMode::None`].
//!
//! [`CostTable`]: dssoc_platform::cost::CostTable

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::error::ModelError;
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_appmodel::workload::Workload;
use dssoc_metrics::MetricsRegistry;
use dssoc_platform::pe::{PeId, PlatformConfig};
use dssoc_trace::{EventKind as TraceKind, FaultKind, TraceSink};

use crate::exec::{
    pe_mask_bit, preflight_compat, register_trace_meta, resolve_unschedulable,
    validate_assignments, CompletionSink, ExecTracer, InstanceTracker, PeSlots, ReadyList,
};
use crate::fault::{FaultDecision, FaultPlan, FaultSpec, FaultState};
use crate::handler::{ResourceHandler, TaskAssignment, TaskCompletion};
use crate::intern::{Interner, NameTable};
use crate::job::{CompiledScenario, CostSpec};
use crate::metrics::{ExecMetrics, OverheadPhase};
use crate::resource::ResourcePool;
use crate::sched::{EstimateBook, PeView, SchedContext, Scheduler};
use crate::stats::{EmulationStats, TaskRecord};
use crate::task::Task;
use crate::time::SimTime;

/// How emulation time is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingMode {
    /// Host wall time; PE threads busy-wait/sleep out their modeled
    /// durations (the paper's literal behaviour on its testbeds).
    WallClock,
    /// Virtual emulation clock driven by the cost model; functional
    /// execution still happens for real.
    Modeled,
}

/// How workload-manager overhead is charged to the emulation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadMode {
    /// Measure the real phase durations and scale them by the overlay
    /// core's relative speed (default; this is what exposes FRFS vs
    /// MET vs EFT overhead in Fig. 10b and the slow-overlay effect in
    /// Fig. 11).
    Measured,
    /// Charge a fixed duration per scheduler invocation (deterministic;
    /// used by differential tests).
    Fixed(Duration),
    /// Charge nothing (what a discrete-event simulator implicitly does).
    None,
}

/// Engine configuration.
#[derive(Clone)]
pub struct EmulationConfig {
    /// Timing mode.
    pub timing: TimingMode,
    /// Overhead charging mode.
    pub overhead: OverheadMode,
    /// Cost specification for CPU task durations in
    /// [`TimingMode::Modeled`]; resolved to a
    /// [`CostModel`](dssoc_platform::cost::CostModel) when the resource
    /// pool is spawned.
    pub cost: CostSpec,
    /// PE-level reservation-queue depth — the paper's stated future work
    /// ("abstractions like PE-level work queues to enable lower-overhead
    /// task dispatch"). `0` reproduces the paper's evaluated behaviour:
    /// the scheduler runs on every task completion and each dispatch
    /// pays scheduling overhead. With depth `k > 0`, a scheduler may
    /// assign up to `k` additional tasks to a busy PE; the PE starts a
    /// queued task the instant the previous one finishes, with no
    /// workload-manager involvement charged.
    pub reservation_depth: usize,
    /// Optional event-trace sink (see the `dssoc-trace` crate). `None`
    /// — the default — costs one branch per would-be event; `Some`
    /// records the full emulation lifecycle into the sink's session for
    /// Chrome/Perfetto, Gantt, and JSONL export.
    pub trace: Option<TraceSink>,
    /// Optional deterministic fault-injection spec (see [`FaultSpec`]).
    /// `None` — the default — keeps every fault-recovery path compiled
    /// out of the hot loop behind one branch.
    pub faults: Option<Arc<FaultSpec>>,
    /// Optional live-metrics registry (see the `dssoc-metrics` crate).
    /// `None` — the default — costs one branch per would-be sample;
    /// `Some` publishes counters/gauges/histograms that any thread can
    /// snapshot mid-run or expose over HTTP.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            timing: TimingMode::Modeled,
            overhead: OverheadMode::Measured,
            cost: CostSpec::default(),
            reservation_depth: 0,
            trace: None,
            faults: None,
            metrics: None,
        }
    }
}

impl std::fmt::Debug for EmulationConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmulationConfig")
            .field("timing", &self.timing)
            .field("overhead", &self.overhead)
            .field("cost", &self.cost)
            .field("reservation_depth", &self.reservation_depth)
            .field("traced", &self.trace.is_some())
            .field("faulted", &self.faults.is_some())
            .field("metered", &self.metrics.is_some())
            .finish()
    }
}

/// Errors surfaced by an emulation run.
#[derive(Debug)]
pub enum EmuError {
    /// Application-model failure (parsing, instantiation, unknown app).
    Model(ModelError),
    /// Invalid configuration (bad platform, incompatible workload,
    /// misbehaving scheduler).
    Config(String),
    /// A kernel failed during execution.
    TaskFailed {
        /// Application name.
        app: String,
        /// DAG node name.
        node: String,
        /// Kernel error text.
        reason: String,
    },
    /// Fault recovery ran out of options: the injected faults left no
    /// PE able to make progress. Carries the last fault's context.
    Fault {
        /// Application name of the last faulted task.
        app: String,
        /// DAG node name of the last faulted task.
        node: String,
        /// Display name of the PE the last fault hit.
        pe: String,
        /// Why the run is unrecoverable.
        reason: String,
    },
    /// The run was cooperatively cancelled mid-flight: an installed
    /// cancel flag (see [`DesSimulator::set_cancel`]
    /// (crate::des::DesSimulator::set_cancel)) was observed set at an
    /// event-loop poll point. Simulated state is discarded; the warm
    /// scratch arena is returned intact, so the engine stays reusable.
    Canceled,
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::Model(e) => write!(f, "model error: {e}"),
            EmuError::Config(msg) => write!(f, "configuration error: {msg}"),
            EmuError::TaskFailed { app, node, reason } => {
                write!(f, "task {app}/{node} failed: {reason}")
            }
            EmuError::Fault { app, node, pe, reason } => {
                write!(f, "unrecoverable fault (last: {app}/{node} on {pe}): {reason}")
            }
            EmuError::Canceled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for EmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmuError::Model(e) => Some(e),
            EmuError::Config(_)
            | EmuError::TaskFailed { .. }
            | EmuError::Fault { .. }
            | EmuError::Canceled => None,
        }
    }
}

impl From<ModelError> for EmuError {
    fn from(e: ModelError) -> Self {
        EmuError::Model(e)
    }
}

/// Robust overhead sampler: on a small host, concurrently executing PE
/// threads preempt the workload manager mid-phase, so a raw `Instant`
/// span can include an involuntary context switch plus a slice of
/// somebody else's kernel. The paper avoids this by pinning the manager
/// to a dedicated core; we approximate that isolation by *learning*
/// phase costs only from quiet iterations (no emulated PE actively
/// executing on the host) and charging the learned cost during noisy
/// ones.
struct PhaseSampler {
    ewma: f64, // seconds
}

impl PhaseSampler {
    const OUTLIER_FACTOR: f64 = 4.0;
    /// Prior for the very first samples: a few microseconds of
    /// bookkeeping, so cold-start page faults and first-touch
    /// allocations don't poison the average.
    const PRIOR: f64 = 1.5e-6;

    fn new() -> Self {
        PhaseSampler { ewma: Self::PRIOR }
    }

    /// Feeds a raw measurement, returning the charge. `quiet` iterations
    /// (every in-flight task already reported, so all PE threads are
    /// parked) update the running average; noisy ones are charged at
    /// most the learned quiet-iteration cost.
    fn sample(&mut self, raw: Duration, quiet: bool) -> Duration {
        let x = raw.as_secs_f64();
        if quiet {
            let clamped = x.min(self.ewma * Self::OUTLIER_FACTOR);
            self.ewma = 0.85 * self.ewma + 0.15 * clamped;
            Duration::from_secs_f64(clamped)
        } else {
            Duration::from_secs_f64(x.min(self.ewma))
        }
    }
}

/// Modeled cost of communicating one dispatch to a resource manager on
/// the emulated SoC: a locked status-field write plus the coherence
/// traffic for the polling manager thread to observe it.
const STATUS_WRITE_COST: Duration = Duration::from_nanos(300);

/// Modeled cost of polling one resource handler's status field under its
/// lock (host-relative; scaled by the overlay speed like every other
/// overhead term). On the emulated SoC each poll is a lock acquisition
/// plus a cache line that the PE core last wrote — this is the term that
/// makes monitoring cost proportional to the PE count (the paper's
/// Fig. 11 explanation for why 7-PE Odroid pools stop paying off on a
/// slow LITTLE overlay core).
const HANDLER_POLL_COST: Duration = Duration::from_nanos(800);

struct PendingCompletion {
    finish: SimTime,
    pe: PeId,
    /// `Some` when the fault plan rewrote this attempt's outcome:
    /// `finish` is then the fault manifestation time.
    fault: Option<FaultKind>,
    completion: TaskCompletion,
}

/// Dispatch-time metadata for the task currently running on a PE, kept
/// only when fault injection is on: the fault decision and the
/// wall-clock watchdog both need the attempt's estimate and start.
struct RunningMeta {
    task: Task,
    est: Duration,
    start: SimTime,
    wall: Instant,
    attempt: u32,
}

/// A faulted task waiting out its retry backoff. `seq` breaks release-
/// time ties deterministically (fault processing order).
struct RetryEntry {
    release: SimTime,
    seq: u64,
    task: Task,
}

/// The platform key of a PE, for degraded-dispatch detection (a retry
/// landing on a different key than the PE it faulted on).
fn pe_key(handlers: &[Arc<ResourceHandler>], id: PeId) -> Option<&str> {
    handlers.iter().find(|h| h.pe_id() == id).map(|h| h.pe.platform_key.as_str())
}

/// Handles `pe` freeing up at `at`: starts its next reserved task (the
/// reservation-queue fast path, shared by normal and faulted
/// completions) or marks it idle. With fault state, records the new
/// attempt's dispatch metadata and degraded-dispatch event.
#[allow(clippy::too_many_arguments)]
fn release_pe(
    pe: PeId,
    at: SimTime,
    handlers: &[Arc<ResourceHandler>],
    slots: &mut PeSlots,
    estimates: &EstimateBook,
    ready_at_of: &mut HashMap<(InstanceId, usize), SimTime>,
    tracer: &ExecTracer,
    running: &mut HashMap<PeId, RunningMeta>,
    fstate: Option<&mut FaultState>,
    sink: &mut CompletionSink,
) {
    let Some(next) = slots.release(pe) else {
        tracer.emit(at, TraceKind::PeIdle { pe: pe.0 });
        return;
    };
    let handler = handlers.iter().find(|h| h.pe_id() == pe).expect("known PE");
    let est = estimates.estimate(&next.task, &handler.pe).unwrap_or(Duration::from_micros(100));
    slots.occupy(pe, at + est);
    ready_at_of.insert(next.task.key(), next.ready_at);
    tracer.emit(
        at,
        TraceKind::TaskDispatch {
            instance: next.task.instance.id.0,
            node: next.task.node_idx as u32,
            pe: pe.0,
        },
    );
    if let Some(state) = fstate {
        let (instance, node) = (next.task.instance.id.0, next.task.node_idx);
        let attempt = state.attempt_of(instance, node);
        if attempt > 1 {
            if let Some(prev) = state.last_fault_pe(instance, node) {
                if pe_key(handlers, prev) != pe_key(handlers, pe) {
                    sink.record_degraded(
                        at,
                        instance,
                        node,
                        pe,
                        state.note_degraded(instance, node),
                    );
                }
            }
        }
        running.insert(
            pe,
            RunningMeta { task: next.task.clone(), est, start: at, wall: Instant::now(), attempt },
        );
    }
    handler.dispatch(TaskAssignment { task: next.task, start: at });
}

/// The emulation driver: a thin per-run loop over a persistent
/// [`ResourcePool`].
///
/// Construction brings up the pool (paper §II-A's initialization phase:
/// handlers plus one named resource-manager thread per PE); each
/// [`Self::run`] call executes one workload against it and the threads
/// park between runs, so a batch sweep pays thread-spawn cost once. The
/// pool is shut down and joined when the `Emulation` is dropped.
pub struct Emulation {
    platform: Arc<PlatformConfig>,
    config: EmulationConfig,
    pool: ResourcePool,
    /// PEs whose resource-manager thread wedged (watchdog fired and the
    /// thread never reported back). They are excluded from end-of-run
    /// drains and start subsequent runs quarantined; a PE is removed
    /// again once its thread finally posts the stale completion.
    wedged: RefCell<HashSet<PeId>>,
}

impl Emulation {
    /// Builds a driver with the default configuration (modeled timing,
    /// measured overhead, scaled-measured costs).
    pub fn new(platform: impl Into<Arc<PlatformConfig>>) -> Result<Self, EmuError> {
        Self::with_config(platform, EmulationConfig::default())
    }

    /// Builds a driver with an explicit configuration, spawning its
    /// resource pool. The platform is `Arc`-shared: pass an existing
    /// `Arc<PlatformConfig>` to avoid a deep clone.
    pub fn with_config(
        platform: impl Into<Arc<PlatformConfig>>,
        config: EmulationConfig,
    ) -> Result<Self, EmuError> {
        let platform = platform.into();
        platform.validate().map_err(EmuError::Config)?;
        let cost = config.cost.resolve();
        let pool = ResourcePool::spawn(&platform, &cost, config.timing)?;
        if let Some(sink) = &config.trace {
            pool.attach_trace(sink);
        }
        Ok(Emulation { platform, config, pool, wedged: RefCell::new(HashSet::new()) })
    }

    /// The platform being emulated.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// Installs (or, with `None`, removes) a trace sink on this driver
    /// and its resource pool. Subsequent [`Self::run`] calls record into
    /// the sink's session.
    pub fn set_trace(&mut self, trace: Option<TraceSink>) {
        match &trace {
            Some(sink) => self.pool.attach_trace(sink),
            None => self.pool.detach_trace(),
        }
        self.config.trace = trace;
    }

    /// Installs (or, with `None`, removes) a fault-injection spec.
    /// Subsequent [`Self::run`] calls compile it against the platform
    /// and honor the resulting plan.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultSpec>>) {
        self.config.faults = faults;
    }

    /// Installs (or, with `None`, removes) a live-metrics registry.
    /// Subsequent [`Self::run`] calls publish into it.
    pub fn set_metrics(&mut self, metrics: Option<MetricsRegistry>) {
        self.config.metrics = metrics;
    }

    /// Runs a workload to completion under `scheduler`, returning the
    /// collected statistics. The persistent resource pool is reused:
    /// consecutive runs on the same `Emulation` dispatch to the same
    /// threads.
    pub fn run(
        &mut self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        library: &AppLibrary,
    ) -> Result<EmulationStats, EmuError> {
        // Pre-flight: every node of every requested app must have a
        // compatible PE in this platform, or the emulation would deadlock.
        preflight_compat(&self.platform, workload, library)?;

        let instances: Vec<Arc<AppInstance>> =
            workload.instantiate(library)?.into_iter().map(Arc::new).collect();

        let mut interner = Interner::new();
        let names = NameTable::build(&instances, &self.platform, &mut interner);
        let plan: Option<FaultPlan> = match &self.config.faults {
            Some(spec) => Some(spec.compile(&self.platform).map_err(EmuError::Config)?),
            None => None,
        };

        let result = self.workload_manager(
            scheduler,
            instances,
            self.pool.handlers(),
            &names,
            plan.as_ref(),
        );
        if result.is_err() {
            // A failed run can leave tasks in flight; wait them out so
            // every PE is idle again for the next run on this pool —
            // except wedged manager threads, which would never report.
            self.pool.drain_except(&self.wedged.borrow());
        }
        result
    }

    /// Runs a precompiled scenario, reusing its name table and fault
    /// plan instead of rebuilding them. Kernels mutate instance memory,
    /// so the threaded engine instantiates fresh private instances per
    /// run; ids and spec mapping match the scenario's shared images by
    /// construction, which is what keeps the precompiled [`NameTable`]
    /// valid. Compatibility was preflighted at compile time.
    pub fn run_compiled(
        &mut self,
        scheduler: &mut dyn Scheduler,
        scenario: &CompiledScenario,
    ) -> Result<EmulationStats, EmuError> {
        let spec = scenario.spec();
        let instances: Vec<Arc<AppInstance>> =
            spec.workload.instantiate(&spec.library)?.into_iter().map(Arc::new).collect();
        let result = self.workload_manager(
            scheduler,
            instances,
            self.pool.handlers(),
            scenario.names(),
            scenario.plan(),
        );
        if result.is_err() {
            self.pool.drain_except(&self.wedged.borrow());
        }
        result
    }

    /// The workload-manager loop (runs on the calling thread — the
    /// emulation's "overlay processor"). `names` and `plan` are
    /// scenario-scoped precomputations: [`Self::run`] builds them per
    /// call, [`Self::run_compiled`] hands in the shared ones.
    fn workload_manager(
        &self,
        scheduler: &mut dyn Scheduler,
        instances: Vec<Arc<AppInstance>>,
        handlers: &[Arc<ResourceHandler>],
        names: &NameTable,
        plan: Option<&FaultPlan>,
    ) -> Result<EmulationStats, EmuError> {
        let timing = self.config.timing;
        let overlay_speed = self.platform.overlay.speed;

        let mut tracker = InstanceTracker::new(&instances, names);
        let kept_instances = instances.clone();
        let metrics = match &self.config.metrics {
            Some(registry) => ExecMetrics::attach(registry, &self.platform, &kept_instances),
            None => ExecMetrics::disabled(),
        };
        let mut arrivals: VecDeque<Arc<AppInstance>> = instances.into();
        let mut ready = ReadyList::new();
        ready.set_metrics(metrics.clone());
        let mut slots = PeSlots::new(handlers.len(), self.config.reservation_depth);
        slots.set_metrics(metrics.clone());
        // ready_at of dispatched tasks, consumed when the completion is
        // recorded.
        let mut ready_at_of: HashMap<(InstanceId, usize), SimTime> = HashMap::new();
        let mut pending: Vec<PendingCompletion> = Vec::new();
        let mut estimates = EstimateBook::new();

        // ---- Fault machinery (all empty/None without a fault spec).
        let mut fstate: Option<FaultState> = plan.map(|p| FaultState::new(p.retry.clone()));
        let mut retries: Vec<RetryEntry> = Vec::new();
        let mut retry_seq = 0u64;
        let mut running: HashMap<PeId, RunningMeta> = HashMap::new();
        // PEs whose manager thread wedged in an earlier run on this
        // pool: their eventual (stale) completions are discarded, and
        // they start this run quarantined.
        let mut stale: HashSet<PeId> = self.wedged.borrow().clone();
        for &pe in &stale {
            slots.fail(pe);
        }

        // Reference start time (paper: captured at emulation start).
        let wall_start = Instant::now();
        let mut vclock = SimTime::ZERO;

        let mut sink = CompletionSink::new();
        let tracer = match &self.config.trace {
            Some(trace_sink) => {
                register_trace_meta(trace_sink, &self.platform, scheduler.name(), &kept_instances);
                ExecTracer::attach(trace_sink, "workload-manager")
            }
            None => ExecTracer::disabled(),
        };
        ready.set_tracer(tracer.clone());
        sink.set_tracer(tracer.clone());
        sink.set_metrics(metrics);
        let mut sampler_mu = PhaseSampler::new();
        let mut sampler_s = PhaseSampler::new();
        let mut sampler_d = PhaseSampler::new();
        let mut failure: Option<EmuError> = None;
        // Scratch buffer for the scheduler's per-invocation PE views.
        let mut views: Vec<PeView<'_>> = Vec::with_capacity(handlers.len());

        'outer: loop {
            let mut now = match timing {
                TimingMode::WallClock => SimTime::from_duration(wall_start.elapsed()),
                TimingMode::Modeled => vclock,
            };
            let mut progress = false;
            // Quiet = every in-flight task has already posted its
            // completion, so no PE thread is executing on the host and
            // phase measurements are preemption-free (the paper's
            // dedicated-manager-core situation).
            let quiet = slots.busy_count() == pending.len();

            // ---- Monitor: poll every resource handler (paper polls the
            // PE status fields under their locks).
            let t_mon = Instant::now();
            for h in handlers.iter() {
                if let Some(c) = h.try_collect() {
                    let pe = h.pe_id();
                    if stale.remove(&pe) {
                        // A wedged manager thread finally reported: the
                        // result belongs to an abandoned attempt.
                        // Discard it — the thread is usable again next
                        // run, but the PE stays quarantined in this one.
                        self.wedged.borrow_mut().remove(&pe);
                        continue;
                    }
                    let meta = running.remove(&pe);
                    let natural = match timing {
                        TimingMode::WallClock => now,
                        TimingMode::Modeled => c.start + c.modeled,
                    };
                    let mut fault = None;
                    let mut finish = natural;
                    if let Some(plan) = plan {
                        let m = meta.as_ref().expect("dispatched task has metadata");
                        let decision = if c.result.is_err() {
                            // A real kernel error under the recovery
                            // policy is a retryable exec fault.
                            Some(FaultDecision { time: natural, kind: FaultKind::Exec })
                        } else {
                            let kernel = names
                                .runfunc(c.task.instance.id, c.task.node_idx, pe)
                                .cloned()
                                .unwrap_or_default();
                            plan.decide(
                                kernel.as_str(),
                                pe,
                                c.task.instance.id.0,
                                c.task.node_idx,
                                m.attempt,
                                c.start,
                                natural,
                                m.est,
                            )
                        };
                        if let Some(d) = decision {
                            finish = d.time;
                            fault = Some(d.kind);
                        }
                    }
                    pending.push(PendingCompletion { finish, pe, fault, completion: c });
                }
            }
            // Wall-clock watchdog: a dispatched kernel that has blown
            // far past its estimate in *real* time has wedged its
            // manager thread. Synthesize a faulted completion at the
            // virtual deadline and stop waiting on the thread (it is
            // skipped by end-of-run drains and remembered across runs)
            // — the alternative is deadlocking the whole emulation.
            if let Some(plan) = plan {
                let deadline_of = |m: &RunningMeta| {
                    mul_duration(m.est, plan.watchdog_factor).max(plan.watchdog_min_wall)
                };
                let wedged: Vec<PeId> = running
                    .iter()
                    .filter(|(pe, m)| !stale.contains(pe) && m.wall.elapsed() >= deadline_of(m))
                    .map(|(pe, _)| *pe)
                    .collect();
                for pe in wedged {
                    let m = running.remove(&pe).expect("listed above");
                    let virtual_overrun = mul_duration(m.est, plan.watchdog_factor);
                    pending.push(PendingCompletion {
                        finish: m.start + virtual_overrun,
                        pe,
                        fault: Some(FaultKind::Watchdog),
                        completion: TaskCompletion {
                            task: m.task,
                            start: m.start,
                            modeled: virtual_overrun,
                            measured: m.wall.elapsed(),
                            accel_reports: Vec::new(),
                            result: Ok(()),
                        },
                    });
                    stale.insert(pe);
                    self.wedged.borrow_mut().insert(pe);
                }
            }
            let monitor_raw = t_mon.elapsed();

            // ---- Update: process completions that are due, in
            // deterministic (finish, task) order; append newly unblocked
            // tasks to the ready list.
            let t_upd = Instant::now();
            pending.sort_by(|a, b| {
                (a.finish, a.completion.task.key()).cmp(&(b.finish, b.completion.task.key()))
            });
            while let Some(pos) = pending.iter().position(|p| p.finish <= now) {
                let p = pending.remove(pos);
                progress = true;
                // Faulted attempt: no task record, no estimate update,
                // no DAG progress — the work was lost. Run the recovery
                // policy instead.
                if let Some(kind) = p.fault {
                    let plan = plan.expect("fault implies a plan");
                    let state = fstate.as_mut().expect("fault implies fault state");
                    let c = p.completion;
                    let (instance, node) = (c.task.instance.id.0, c.task.node_idx);
                    ready_at_of.remove(&c.task.key());
                    sink.record_fault(p.finish, instance, node, p.pe, kind);
                    let action = state.on_fault(plan, instance, node, p.pe, kind, p.finish);
                    if action.quarantine && !slots.is_failed(p.pe) {
                        // Requeue work reserved behind the dead PE, then
                        // retire it: no PeIdle event — the PE leaves the
                        // schedulable set for good.
                        for rt in slots.take_reserved(p.pe) {
                            ready.push(rt.task, p.finish);
                        }
                        slots.release(p.pe);
                        slots.fail(p.pe);
                        sink.record_quarantine(p.finish, p.pe);
                    } else {
                        release_pe(
                            p.pe,
                            p.finish,
                            handlers,
                            &mut slots,
                            &estimates,
                            &mut ready_at_of,
                            &tracer,
                            &mut running,
                            Some(state),
                            &mut sink,
                        );
                    }
                    if let Some((attempt, release)) = action.retry {
                        sink.record_retry(p.finish, instance, node, attempt, release);
                        retries.push(RetryEntry { release, seq: retry_seq, task: c.task });
                        retry_seq += 1;
                    } else if action.newly_aborted {
                        sink.record_abort();
                    }
                    continue;
                }
                // Reservation queue: the PE itself starts its next
                // queued task at the completion instant — no scheduler
                // invocation, no charged overhead (the point of the
                // paper's proposed work queues).
                release_pe(
                    p.pe,
                    p.finish,
                    handlers,
                    &mut slots,
                    &estimates,
                    &mut ready_at_of,
                    &tracer,
                    &mut running,
                    fstate.as_mut(),
                    &mut sink,
                );
                let c = p.completion;
                if let Err(e) = &c.result {
                    failure = Some(EmuError::TaskFailed {
                        app: c.task.app_name().to_string(),
                        node: c.task.node().name.clone(),
                        reason: e.to_string(),
                    });
                    break 'outer;
                }
                let pe = handlers.iter().find(|h| h.pe_id() == p.pe).expect("known PE");
                let kernel = names
                    .runfunc(c.task.instance.id, c.task.node_idx, p.pe)
                    .cloned()
                    .unwrap_or_default();
                estimates.observe(&kernel, pe.pe.class_name(), c.modeled);
                sink.record_task(TaskRecord {
                    instance: c.task.instance.id,
                    app: names.app(c.task.instance.id).clone(),
                    node: names.node(c.task.instance.id, c.task.node_idx).clone(),
                    node_idx: c.task.node_idx,
                    kernel,
                    pe: p.pe,
                    ready_at: ready_at_of.remove(&c.task.key()).unwrap_or(c.start),
                    start: c.start,
                    finish: p.finish,
                    modeled: c.modeled,
                    measured: c.measured,
                });
                if let Some(rec) = tracker.complete_task(&c.task, p.finish, &mut ready) {
                    if fstate.as_ref().is_some_and(|s| s.had_faults(c.task.instance.id.0)) {
                        sink.record_survival();
                    }
                    sink.record_app(rec);
                }
            }

            // ---- Release due retries into the ready list, in
            // deterministic (release, seq) order.
            if !retries.is_empty() {
                retries.sort_by_key(|r| (r.release, r.seq));
                while retries.first().is_some_and(|r| r.release <= now) {
                    let r = retries.remove(0);
                    ready.push(r.task, r.release);
                    progress = true;
                }
            }

            // ---- Inject: applications whose arrival time has passed.
            while arrivals.front().is_some_and(|a| SimTime::from_duration(a.arrival) <= now) {
                let inst = arrivals.pop_front().expect("checked front");
                let at = SimTime::from_duration(inst.arrival);
                tracer.emit(at, TraceKind::AppArrive { instance: inst.id.0 });
                ready.push_roots(&inst, at);
                progress = true;
            }
            let update_raw = t_upd.elapsed();

            // Charge monitor/update overhead on productive iterations.
            // (Idle polls are not charged — the paper's overhead metric
            // covers the work done around task completions and arrivals,
            // not the spin-wait between them.)
            if progress {
                let (m, u) = match self.config.overhead {
                    OverheadMode::Measured => {
                        let k = 1.0 / overlay_speed;
                        let mu = sampler_mu.sample(monitor_raw + update_raw, quiet)
                            + HANDLER_POLL_COST * handlers.len() as u32;
                        let m_frac = monitor_raw.as_secs_f64()
                            / (monitor_raw + update_raw).as_secs_f64().max(1e-12);
                        (
                            mul_duration(mul_duration(mu, m_frac), k),
                            mul_duration(mul_duration(mu, 1.0 - m_frac), k),
                        )
                    }
                    OverheadMode::Fixed(_) | OverheadMode::None => (Duration::ZERO, Duration::ZERO),
                };
                sink.charge_overhead(OverheadPhase::Monitor, m);
                sink.charge_overhead(OverheadPhase::Update, u);
                if timing == TimingMode::Modeled {
                    now += m + u;
                    vclock = now;
                }
            }

            // ---- Schedule + dispatch. The scheduling and dispatch
            // overhead delays the dispatched tasks themselves (the
            // workload manager runs inline on the overlay core), which is
            // how scheduler complexity shows up in workload execution
            // time (paper Fig. 10). The policy runs when the ready list
            // or PE availability just changed — i.e. on completions and
            // arrivals, matching the paper's "a scheduling algorithm
            // incurs this overhead every time a task completes".
            // With reservation queues a single pass fills at most one
            // slot per PE, so the scheduling phase repeats until the
            // policy stops assigning or no schedulable slot remains —
            // each pass paying its own overhead charge.

            // Permanent failures on idle PEs take effect as the clock
            // passes them (busy PEs die through their in-flight
            // attempt's fault decision instead).
            if let Some(plan) = plan {
                for h in handlers.iter() {
                    let pe = h.pe_id();
                    if slots.is_failed(pe) || slots.is_busy(pe) {
                        continue;
                    }
                    if let Some(tf) = plan.permanent_failure_at(pe) {
                        if tf <= now {
                            slots.fail(pe);
                            sink.record_quarantine(tf, pe);
                        }
                    }
                }
            }

            let mut sched_pass = 0usize;
            loop {
                if !(progress && !ready.is_empty() && slots.any_schedulable()) {
                    break;
                }
                if sched_pass > 0 && slots.depth() == 0 {
                    // Without queues one pass is complete (the policy saw
                    // every idle PE already).
                    break;
                }
                sched_pass += 1;
                let t_sched = Instant::now();
                views.clear();
                views.extend(handlers.iter().map(|h| slots.view(&h.pe, now)));
                let ctx = SchedContext { now, estimates: &estimates };
                let mut assignments = scheduler.schedule(ready.pending(), &views, &ctx);
                sink.note_sched_invocation();
                let schedule_raw = t_sched.elapsed();
                if tracer.enabled() {
                    let candidates =
                        views.iter().filter(|v| v.idle).fold(0u64, |m, v| m | pe_mask_bit(v.pe.id));
                    let chosen = assignments.iter().fold(0u64, |m, a| m | pe_mask_bit(a.pe));
                    tracer.emit(
                        now,
                        TraceKind::SchedDecision {
                            invocation: sink.sched_invocations,
                            ready: ready.len() as u32,
                            candidates,
                            chosen,
                            assigned: assignments.len() as u32,
                        },
                    );
                }

                // Charge the policy's own cost before dispatching.
                let s_charge = match self.config.overhead {
                    OverheadMode::Measured => {
                        mul_duration(sampler_s.sample(schedule_raw, quiet), 1.0 / overlay_speed)
                    }
                    OverheadMode::Fixed(d) => d,
                    OverheadMode::None => Duration::ZERO,
                };
                sink.charge_overhead(OverheadPhase::Schedule, s_charge);
                if timing == TimingMode::Modeled {
                    now += s_charge;
                    vclock = now;
                }

                let t_disp = Instant::now();
                // Validate the scheduler contract before touching state.
                if let Err(e) = validate_assignments(
                    scheduler.name(),
                    &assignments,
                    ready.pending(),
                    &slots,
                    &self.platform,
                ) {
                    failure = Some(e);
                    break 'outer;
                }
                // The handler hand-off itself is *not* timed: waking a
                // sleeping host thread costs a futex syscall here,
                // whereas on the emulated SoC the dispatch communication
                // is a locked status-field write that the polling
                // resource manager observes — that cost is charged as a
                // fixed term per dispatch instead.
                assignments.sort_by_key(|a| a.ready_idx);
                let mut to_dispatch = Vec::with_capacity(assignments.len());
                for a in &assignments {
                    let rt = ready.pending()[a.ready_idx].clone();
                    let handler = handlers.iter().find(|h| h.pe_id() == a.pe).expect("validated");
                    let est = estimates
                        .estimate(&rt.task, &handler.pe)
                        .unwrap_or(Duration::from_micros(100));
                    if slots.is_busy(a.pe) {
                        // PE busy but with reservation room: enqueue.
                        slots.extend(a.pe, est);
                        slots.reserve(a.pe, rt);
                    } else {
                        slots.occupy(a.pe, now + est);
                        ready_at_of.insert(rt.task.key(), rt.ready_at);
                        tracer.emit(
                            now,
                            TraceKind::TaskDispatch {
                                instance: rt.task.instance.id.0,
                                node: rt.task.node_idx as u32,
                                pe: a.pe.0,
                            },
                        );
                        tracer.emit(now, TraceKind::PeBusy { pe: a.pe.0 });
                        if let Some(state) = fstate.as_mut() {
                            let (instance, node) = (rt.task.instance.id.0, rt.task.node_idx);
                            let attempt = state.attempt_of(instance, node);
                            if attempt > 1 {
                                if let Some(prev) = state.last_fault_pe(instance, node) {
                                    if pe_key(handlers, prev) != pe_key(handlers, a.pe) {
                                        sink.record_degraded(
                                            now,
                                            instance,
                                            node,
                                            a.pe,
                                            state.note_degraded(instance, node),
                                        );
                                    }
                                }
                            }
                            running.insert(
                                a.pe,
                                RunningMeta {
                                    task: rt.task.clone(),
                                    est,
                                    start: now,
                                    wall: Instant::now(),
                                    attempt,
                                },
                            );
                        }
                        to_dispatch.push((handler, TaskAssignment { task: rt.task, start: now }));
                    }
                    progress = true;
                }
                ready.remove(&assignments);
                let dispatch_raw = t_disp.elapsed() + STATUS_WRITE_COST * to_dispatch.len() as u32;
                for (handler, assignment) in to_dispatch {
                    handler.dispatch(assignment);
                }
                let d_charge = match self.config.overhead {
                    OverheadMode::Measured => {
                        mul_duration(sampler_d.sample(dispatch_raw, quiet), 1.0 / overlay_speed)
                    }
                    OverheadMode::Fixed(_) | OverheadMode::None => Duration::ZERO,
                };
                sink.charge_overhead(OverheadPhase::Dispatch, d_charge);
                if timing == TimingMode::Modeled {
                    now += d_charge;
                    vclock = now;
                }
                if assignments.is_empty() {
                    break;
                }
            }

            // ---- Termination.
            if arrivals.is_empty()
                && ready.is_empty()
                && slots.all_idle()
                && pending.is_empty()
                && retries.is_empty()
            {
                break;
            }

            // ---- Advance time / wait for reports.
            if !progress {
                match timing {
                    TimingMode::WallClock => {
                        if arrivals.is_empty()
                            && pending.is_empty()
                            && retries.is_empty()
                            && slots.all_idle()
                            && !ready.is_empty()
                        {
                            // With fault recovery active this stall may
                            // mean "these tasks lost their last
                            // compatible PE" rather than a scheduler
                            // bug; let the resolver abort those apps.
                            let resolved = match fstate.as_mut() {
                                Some(state) => match resolve_unschedulable(
                                    &self.platform,
                                    &mut slots,
                                    &mut ready,
                                    state,
                                    &mut sink,
                                    names,
                                ) {
                                    Ok(r) => r,
                                    Err(e) => {
                                        failure = Some(e);
                                        break 'outer;
                                    }
                                },
                                None => false,
                            };
                            if !resolved {
                                failure = Some(EmuError::Config(format!(
                                    "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no work is in flight",
                                    ready.len(),
                                    scheduler.name()
                                )));
                                break 'outer;
                            }
                            continue;
                        }
                        std::thread::yield_now();
                    }
                    TimingMode::Modeled => {
                        if pending.len() < slots.busy_count() {
                            // Some in-flight task hasn't reported its
                            // modeled duration yet; the virtual clock
                            // cannot safely advance.
                            std::thread::yield_now();
                            continue;
                        }
                        let mut next = SimTime::MAX;
                        if let Some(a) = arrivals.front() {
                            next = next.min(SimTime::from_duration(a.arrival));
                        }
                        for p in &pending {
                            next = next.min(p.finish);
                        }
                        for r in &retries {
                            next = next.min(r.release);
                        }
                        if next == SimTime::MAX {
                            let resolved = match fstate.as_mut() {
                                Some(state) => match resolve_unschedulable(
                                    &self.platform,
                                    &mut slots,
                                    &mut ready,
                                    state,
                                    &mut sink,
                                    names,
                                ) {
                                    Ok(r) => r,
                                    Err(e) => {
                                        failure = Some(e);
                                        break 'outer;
                                    }
                                },
                                None => false,
                            };
                            if !resolved {
                                failure = Some(EmuError::Config(format!(
                                    "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no work is in flight",
                                    ready.len(),
                                    scheduler.name()
                                )));
                                break 'outer;
                            }
                            continue;
                        }
                        vclock = vclock.max(next);
                    }
                }
            }
        }

        if let Some(e) = failure {
            return Err(e);
        }

        Ok(sink.finish(&self.platform, scheduler.name().to_string(), kept_instances))
    }
}

fn mul_duration(d: Duration, k: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * k)
}
