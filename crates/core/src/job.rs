//! The Scenario/Job layer: one immutable description of "what to run",
//! compiled once and shared everywhere.
//!
//! The paper's framework is invoked once per configuration, but the
//! ROADMAP's north star is an emulation-as-a-service runtime (the CEDR
//! direction) where jobs arrive dynamically: the same scenario tuple —
//! applications × platform × scheduler × seed (DS3's decomposition) —
//! shows up again and again across sweep cells, tenants, and autotuner
//! probes. This module makes that tuple a first-class value:
//!
//! * [`ScenarioSpec`] — the immutable scenario: `Arc`-shared app
//!   library, platform, workload, scheduler name, fault spec, and the
//!   timing/overhead/reservation knobs. Cloning is a handful of
//!   refcount bumps.
//! * [`ScenarioSpec::fingerprint`] — a stable structural hash
//!   (splitmix64 mixing, like the fault plan's RNG): equal for
//!   structurally equal specs regardless of `Arc` identity or build
//!   order, different under any field mutation.
//! * [`CompiledScenario`] — everything both engines used to rebuild per
//!   run, precompiled once: interned [`NameTable`], the dense
//!   `[spec][node][PE]` [`CostGrid`], the compiled [`FaultPlan`], the
//!   shared read-only instance images, and a slot-assigned
//!   [`EstimateBook`] prototype. Shared across runs *and threads* via
//!   `Arc`.
//! * [`JobRunner`] — the front door: give it a compiled scenario and an
//!   [`Engine`], get a [`JobResult`] back. It keeps warm engine pools
//!   keyed by what engine construction actually depends on, and a
//!   bounded [`ResultCache`] keyed by fingerprint so repeated
//!   deterministic runs are answered without running at all.
//!
//! [`FaultPlan`]: crate::fault::FaultPlan

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dssoc_appmodel::app::{AppLibrary, ApplicationSpec, NodeSpec};
use dssoc_appmodel::instance::AppInstance;
use dssoc_appmodel::workload::Workload;
use dssoc_metrics::{CounterCell, MetricsRegistry};
use dssoc_platform::cost::{CostModel, CostTable, ScaledMeasuredCost};
use dssoc_platform::pe::{PeDescriptor, PeKind, PlatformConfig};
use dssoc_platform::presets::{odroid_xu3, zcu102};
use dssoc_trace::TraceSink;

use crate::des::{DesConfig, DesSimulator};
use crate::engine::{EmuError, Emulation, EmulationConfig, OverheadMode, TimingMode};
use crate::exec::preflight_compat;
use crate::fault::{FaultPlan, FaultSpec};
use crate::intern::{Interner, NameTable};
use crate::sched::{by_name, EstimateBook, EstimateSlot, Scheduler};
use crate::soa::ScenarioSoa;
use crate::stats::EmulationStats;

/// Dispatch costs resolved once per scenario, indexed
/// `[spec_index][node_idx][pe_column]`: the modeled duration plus the
/// estimate-book slot its completion observation lands in.
/// Incompatible combinations hold `None`.
pub type CostGrid = Vec<Vec<Vec<Option<(Duration, EstimateSlot)>>>>;

// ---------------------------------------------------------------------------
// Cost specification
// ---------------------------------------------------------------------------

/// How task durations are derived — the *describable* counterpart of
/// [`CostModel`].
///
/// Both engine configs used to hold a bare `Arc<dyn CostModel>`, which
/// made them impossible to `Debug` and their runs impossible to
/// fingerprint. The two models every harness actually uses are data
/// ([`ScaledMeasuredCost`] wraps a [`CostTable`] of estimates;
/// [`CostTable`] *is* its entries), so the spec stores that data and
/// resolves it to a model on demand. [`CostSpec::Model`] remains as the
/// escape hatch for custom [`CostModel`] implementations; it is
/// fingerprinted by identity and never treated as deterministic.
#[derive(Clone)]
pub enum CostSpec {
    /// Scale host-measured kernel time by PE speed; the table feeds
    /// scheduler estimates only (the default — real execution, modeled
    /// platform).
    ScaledMeasured(Arc<CostTable>),
    /// Fully deterministic per-`(kernel, class)` durations (what the
    /// DES consumes and what differential tests pin both engines to).
    Table(Arc<CostTable>),
    /// An opaque user-supplied model. Fingerprinted by `Arc` identity,
    /// so two specs compare equal only when they share the same
    /// instance; never eligible for result caching.
    Model(Arc<dyn CostModel>),
}

impl CostSpec {
    /// The default scaled-measured spec with no estimates.
    pub fn scaled_measured() -> Self {
        CostSpec::ScaledMeasured(Arc::new(CostTable::new()))
    }

    /// A deterministic cost-table spec.
    pub fn table(table: CostTable) -> Self {
        CostSpec::Table(Arc::new(table))
    }

    /// Resolves the spec into the model the engines consume.
    pub fn resolve(&self) -> Arc<dyn CostModel> {
        match self {
            CostSpec::ScaledMeasured(t) => {
                Arc::new(ScaledMeasuredCost { estimates: (**t).clone() })
            }
            CostSpec::Table(t) => Arc::clone(t) as Arc<dyn CostModel>,
            CostSpec::Model(m) => Arc::clone(m),
        }
    }

    /// True when every duration this spec yields is a pure function of
    /// the scenario (no host measurement involved). Note this assumes
    /// the table covers every kernel the workload dispatches — a missing
    /// entry makes the threaded engine fall back to scaled measurement.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, CostSpec::Table(_))
    }

    fn hash_into(&self, h: u64) -> u64 {
        match self {
            CostSpec::ScaledMeasured(t) => hash_cost_table(mix(h, 1), t),
            CostSpec::Table(t) => hash_cost_table(mix(h, 2), t),
            // Identity hash: stable within a process, which is all a
            // memo key needs — Model specs are never cached.
            CostSpec::Model(m) => mix(mix(h, 3), Arc::as_ptr(m) as *const () as u64),
        }
    }
}

impl Default for CostSpec {
    fn default() -> Self {
        CostSpec::scaled_measured()
    }
}

impl std::fmt::Debug for CostSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostSpec::ScaledMeasured(t) => {
                write!(f, "ScaledMeasured({} estimate(s))", t.len())
            }
            CostSpec::Table(t) => write!(f, "Table({} entry(s))", t.len()),
            CostSpec::Model(_) => f.write_str("Model(<custom>)"),
        }
    }
}

// ---------------------------------------------------------------------------
// Platform presets by name
// ---------------------------------------------------------------------------

/// Parses a platform-preset shorthand — `zcu102:<cores>C+<ffts>F` or
/// `odroid:<big>B+<little>L` — into a validated [`PlatformConfig`].
///
/// This is the single source of truth for preset resolution: the CLI's
/// `--platform` flag and the figure harnesses both route through it
/// (they used to duplicate the bounds checks and error strings).
pub fn platform_preset(spec: &str) -> Result<PlatformConfig, String> {
    let (board, shape) = spec
        .split_once(':')
        .ok_or_else(|| format!("platform '{spec}' must look like zcu102:2C+1F or odroid:3B+2L"))?;
    let shape_up = shape.to_ascii_uppercase();
    let parse_pair = |a_tag: char, b_tag: char| -> Result<(usize, usize), String> {
        let (a, b) = shape_up
            .split_once('+')
            .ok_or_else(|| format!("shape '{shape}' must look like 2{a_tag}+1{b_tag}"))?;
        let a_n = a
            .strip_suffix(a_tag)
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| format!("bad count '{a}' (expected e.g. 2{a_tag})"))?;
        let b_n = b
            .strip_suffix(b_tag)
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| format!("bad count '{b}' (expected e.g. 1{b_tag})"))?;
        Ok((a_n, b_n))
    };
    match board.to_ascii_lowercase().as_str() {
        "zcu102" => {
            let (c, f) = parse_pair('C', 'F')?;
            if c > 3 {
                return Err("zcu102 supports at most 3 resource-pool cores".into());
            }
            if c + f == 0 {
                return Err("platform needs at least one PE".into());
            }
            Ok(zcu102(c, f))
        }
        "odroid" => {
            let (b, l) = parse_pair('B', 'L')?;
            if b > 4 || l > 3 {
                return Err("odroid supports at most 4 big and 3 LITTLE pool cores".into());
            }
            if b + l == 0 {
                return Err("platform needs at least one PE".into());
            }
            Ok(odroid_xu3(b, l))
        }
        other => Err(format!("unknown board '{other}' (use zcu102 or odroid)")),
    }
}

// ---------------------------------------------------------------------------
// Structural fingerprint
// ---------------------------------------------------------------------------

/// The stable content fingerprint of a [`ScenarioSpec`] (see
/// [`ScenarioSpec::fingerprint`]). Displays as 16 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 16-hex-digit form [`Display`](std::fmt::Display)
    /// produces — the round-trip for fingerprints quoted in API
    /// responses and logs.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

// The same splitmix64 finalizer the fault plan's counter RNG uses: a
// strong, dependency-free 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds one word into the running hash.
fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn mix_str(h: u64, s: &str) -> u64 {
    mix(mix(h, s.len() as u64), fnv1a(s.as_bytes()))
}

fn mix_f64(h: u64, x: f64) -> u64 {
    mix(h, x.to_bits())
}

fn mix_dur(h: u64, d: Duration) -> u64 {
    mix(h, d.as_nanos() as u64)
}

fn mix_opt_dur(h: u64, d: Option<Duration>) -> u64 {
    match d {
        Some(d) => mix_dur(mix(h, 1), d),
        None => mix(h, 0),
    }
}

fn hash_cost_table(mut h: u64, t: &CostTable) -> u64 {
    // BTreeMaps iterate in key order, so the walk is canonical.
    h = mix(h, t.entries.len() as u64);
    for (kernel, classes) in &t.entries {
        h = mix_str(h, kernel);
        h = mix(h, classes.len() as u64);
        for (class, d) in classes {
            h = mix_dur(mix_str(h, class), *d);
        }
    }
    h
}

fn hash_platform(mut h: u64, p: &PlatformConfig) -> u64 {
    h = mix_str(h, &p.name);
    h = mix(h, p.host_slots as u64);
    h = mix_f64(mix_str(h, &p.overlay.name), p.overlay.speed);
    h = mix_dur(h, p.contention.context_switch);
    h = mix(h, p.pes.len() as u64);
    for pe in &p.pes {
        h = mix(h, pe.id.0 as u64);
        h = mix_str(h, &pe.name);
        h = mix_str(h, &pe.platform_key);
        match &pe.kind {
            PeKind::Cpu(c) => {
                h = mix_f64(mix_str(mix(h, 1), &c.class), c.speed);
            }
            PeKind::Accel(a) => {
                h = mix_str(mix(h, 2), &a.kind);
                h = mix_f64(mix_dur(h, a.dma.setup), a.dma.bytes_per_sec);
                h = mix_f64(h, a.throughput_msps);
                h = mix_dur(h, a.pipeline_latency);
                h = mix(h, a.max_points as u64);
            }
        }
    }
    h
}

fn hash_app(mut h: u64, spec: &ApplicationSpec) -> u64 {
    h = mix_str(h, &spec.name);
    h = mix(h, spec.variables.len() as u64);
    for (name, v) in &spec.variables {
        h = mix_str(h, name);
        h = mix(h, v.bytes as u64);
        h = mix(h, v.is_ptr as u64);
        h = mix(h, v.ptr_alloc_bytes as u64);
        h = mix(mix(h, v.val.len() as u64), fnv1a(&v.val));
    }
    h = mix(h, spec.nodes.len() as u64);
    for node in &spec.nodes {
        h = mix_str(h, &node.name);
        h = mix(h, node.index as u64);
        for arg in &node.arguments {
            h = mix_str(h, arg);
        }
        for &p in &node.predecessors {
            h = mix(h, p as u64);
        }
        for &s in &node.successors {
            h = mix(h, s as u64);
        }
        h = mix(h, node.platforms.len() as u64);
        for p in &node.platforms {
            h = mix_str(h, &p.key);
            h = mix_str(h, &p.runfunc);
            h = mix_str(h, &p.shared_object);
            h = mix_opt_dur(h, p.mean_exec);
        }
    }
    h
}

fn hash_faults(mut h: u64, f: &FaultSpec) -> u64 {
    h = mix(h, f.seed);
    h = mix(h, f.permanent.len() as u64);
    for p in &f.permanent {
        h = mix_f64(mix(h, p.pe as u64), p.at_us);
    }
    for rules in [&f.transient, &f.hangs] {
        h = mix(h, rules.len() as u64);
        for r in rules {
            h = match &r.kernel {
                Some(k) => mix_str(mix(h, 1), k),
                None => mix(h, 0),
            };
            h = match r.pe {
                Some(pe) => mix(mix(h, 1), pe as u64),
                None => mix(h, 0),
            };
            h = mix_f64(h, r.probability);
        }
    }
    h = mix(h, f.retry.max_retries as u64);
    h = mix_f64(h, f.retry.backoff_us);
    h = mix(h, f.retry.quarantine_after as u64);
    h = mix_f64(h, f.watchdog_factor);
    mix_f64(h, f.watchdog_min_wall_ms)
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

/// The immutable description of one emulation scenario.
///
/// Every field that can be shared is behind an `Arc`, so cloning a spec
/// — or deriving a sweep cell from it — never deep-copies app or
/// platform models. Build one with [`ScenarioSpec::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Application library the workload draws from.
    pub library: Arc<AppLibrary>,
    /// Platform to emulate.
    pub platform: Arc<PlatformConfig>,
    /// Library scheduler name (resolved via [`by_name`]).
    pub scheduler: String,
    /// The workload (arrival schedule).
    pub workload: Arc<Workload>,
    /// Timing mode.
    pub timing: TimingMode,
    /// Overhead charging mode. The DES engine charges
    /// [`OverheadMode::Fixed`] per scheduler invocation and treats the
    /// other modes as free scheduling.
    pub overhead: OverheadMode,
    /// Cost specification (see [`CostSpec`]).
    pub cost: CostSpec,
    /// PE-level reservation-queue depth (threaded engine only).
    pub reservation_depth: usize,
    /// Optional deterministic fault-injection spec; its `seed` is the
    /// scenario's seed.
    pub faults: Option<Arc<FaultSpec>>,
}

impl ScenarioSpec {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The stable structural fingerprint of this scenario.
    ///
    /// Two specs fingerprint equal iff they describe the same scenario
    /// *by value*: the hash walks field contents in a fixed canonical
    /// order (apps sorted by name, table entries in key order), so it
    /// is independent of `Arc` identity, of how the spec was built, and
    /// of registration order in the library. Only workload-referenced
    /// applications contribute — registering unrelated apps does not
    /// disturb the fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = 0x5ce0_a9d1_57ab_1e00u64;
        h = hash_platform(mix(h, 1), &self.platform);
        // Referenced apps, by sorted name (a BTreeSet dedups + orders).
        let apps: BTreeSet<&str> =
            self.workload.entries.iter().map(|e| e.app_name.as_str()).collect();
        h = mix(h, apps.len() as u64);
        for name in apps {
            h = mix_str(h, name);
            if let Ok(spec) = self.library.get(name) {
                h = hash_app(h, &spec);
            }
        }
        h = mix(h, self.workload.entries.len() as u64);
        for e in &self.workload.entries {
            h = mix_dur(mix_str(h, &e.app_name), e.arrival);
        }
        h = mix_opt_dur(h, self.workload.time_frame);
        // Scheduler resolution is case-insensitive, so "FRFS" and
        // "frfs" are the same scenario.
        h = mix_str(h, &self.scheduler.to_ascii_lowercase());
        h = mix(h, matches!(self.timing, TimingMode::Modeled) as u64);
        h = match self.overhead {
            OverheadMode::Measured => mix(h, 1),
            OverheadMode::Fixed(d) => mix_dur(mix(h, 2), d),
            OverheadMode::None => mix(h, 3),
        };
        h = self.cost.hash_into(h);
        h = mix(h, self.reservation_depth as u64);
        h = match &self.faults {
            Some(f) => hash_faults(mix(h, 1), f),
            None => mix(h, 0),
        };
        Fingerprint(h)
    }

    /// The sub-fingerprint of everything engine *construction* depends
    /// on (platform, timing, overhead, cost, reservation depth — not
    /// the workload or scheduler). [`JobRunner`] keys its warm engine
    /// pools on this, so scenarios differing only in workload or policy
    /// share one resource pool.
    fn engine_key(&self) -> u64 {
        let mut h = 0x0e9c_55b7_21d3_a400u64;
        h = hash_platform(h, &self.platform);
        h = mix(h, matches!(self.timing, TimingMode::Modeled) as u64);
        h = match self.overhead {
            OverheadMode::Measured => mix(h, 1),
            OverheadMode::Fixed(d) => mix_dur(mix(h, 2), d),
            OverheadMode::None => mix(h, 3),
        };
        h = self.cost.hash_into(h);
        mix(h, self.reservation_depth as u64)
    }
}

/// Builder for [`ScenarioSpec`] — the one place platform presets and
/// scheduler names are resolved and validated.
#[derive(Default)]
pub struct ScenarioBuilder {
    library: Option<Arc<AppLibrary>>,
    platform: Option<Arc<PlatformConfig>>,
    platform_name: Option<String>,
    scheduler: Option<String>,
    workload: Option<Arc<Workload>>,
    timing: Option<TimingMode>,
    overhead: Option<OverheadMode>,
    cost: Option<CostSpec>,
    reservation_depth: usize,
    faults: Option<Arc<FaultSpec>>,
}

impl ScenarioBuilder {
    /// Sets the application library (required).
    pub fn library(mut self, library: impl Into<Arc<AppLibrary>>) -> Self {
        self.library = Some(library.into());
        self
    }

    /// Sets the platform from a config (overrides
    /// [`Self::platform_named`]).
    pub fn platform(mut self, platform: impl Into<Arc<PlatformConfig>>) -> Self {
        self.platform = Some(platform.into());
        self
    }

    /// Sets the platform from a preset shorthand like `zcu102:2C+1F`
    /// (resolved at [`Self::build`] via [`platform_preset`]).
    pub fn platform_named(mut self, spec: impl Into<String>) -> Self {
        self.platform_name = Some(spec.into());
        self
    }

    /// Sets the scheduler name (default `"frfs"`).
    pub fn scheduler(mut self, name: impl Into<String>) -> Self {
        self.scheduler = Some(name.into());
        self
    }

    /// Sets the workload (required).
    pub fn workload(mut self, workload: impl Into<Arc<Workload>>) -> Self {
        self.workload = Some(workload.into());
        self
    }

    /// Sets the timing mode (default [`TimingMode::Modeled`]).
    pub fn timing(mut self, timing: TimingMode) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Sets the overhead mode (default [`OverheadMode::Measured`]).
    pub fn overhead(mut self, overhead: OverheadMode) -> Self {
        self.overhead = Some(overhead);
        self
    }

    /// Sets the cost specification (default scaled-measured).
    pub fn cost(mut self, cost: CostSpec) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Sets the reservation-queue depth (default 0).
    pub fn reservation_depth(mut self, depth: usize) -> Self {
        self.reservation_depth = depth;
        self
    }

    /// Attaches a fault-injection spec.
    pub fn faults(mut self, faults: Arc<FaultSpec>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Validates and assembles the spec. One error path covers the
    /// platform (preset bounds or config validation) and the scheduler
    /// name.
    pub fn build(self) -> Result<ScenarioSpec, EmuError> {
        let library =
            self.library.ok_or_else(|| EmuError::Config("scenario needs a library".into()))?;
        let workload =
            self.workload.ok_or_else(|| EmuError::Config("scenario needs a workload".into()))?;
        let platform = match (self.platform, self.platform_name) {
            (Some(p), _) => p,
            (None, Some(name)) => Arc::new(platform_preset(&name).map_err(EmuError::Config)?),
            (None, None) => {
                return Err(EmuError::Config("scenario needs a platform".into()));
            }
        };
        platform.validate().map_err(EmuError::Config)?;
        let scheduler = self.scheduler.unwrap_or_else(|| "frfs".to_string());
        if by_name(&scheduler).is_none() {
            return Err(EmuError::Config(format!("unknown scheduler '{scheduler}'")));
        }
        Ok(ScenarioSpec {
            library,
            platform,
            scheduler,
            workload,
            timing: self.timing.unwrap_or(TimingMode::Modeled),
            overhead: self.overhead.unwrap_or(OverheadMode::Measured),
            cost: self.cost.unwrap_or_default(),
            reservation_depth: self.reservation_depth,
            faults: self.faults,
        })
    }
}

// ---------------------------------------------------------------------------
// CompiledScenario
// ---------------------------------------------------------------------------

/// Duration charged for `node` on `pe`: cost model first, then the JSON
/// per-platform estimate, then a speed-scaled default — the same
/// priority the estimate book uses. Deterministic because the cost
/// model is always queried with a zero measured time.
pub(crate) fn dispatch_duration(
    cost: &dyn CostModel,
    node: &NodeSpec,
    pe: &PeDescriptor,
) -> Duration {
    let platform = node.platform(&pe.platform_key).expect("compat checked");
    if let Some(d) = cost.task_duration(&platform.runfunc, pe, Duration::ZERO) {
        return d;
    }
    if let Some(d) = platform.mean_exec {
        return d;
    }
    Duration::from_secs_f64(100e-6 / pe.speed())
}

/// Resolves every `(spec, node, PE)` dispatch cost into a dense grid,
/// reserving estimate-book slots as it goes. `NameTable` assigns spec
/// indices in first-encounter order over the same instance slice, so
/// the first instance of each spec fills exactly the next row.
pub(crate) fn build_cost_grid(
    cost: &dyn CostModel,
    platform: &PlatformConfig,
    names: &NameTable,
    instances: &[Arc<AppInstance>],
    estimates: &mut EstimateBook,
) -> CostGrid {
    let mut costs: CostGrid = Vec::with_capacity(names.spec_count());
    for inst in instances {
        if names.spec_index(inst.id) == costs.len() {
            costs.push(
                inst.spec
                    .nodes
                    .iter()
                    .map(|node| {
                        platform
                            .pes
                            .iter()
                            .map(|pe| {
                                node.platform(&pe.platform_key).map(|p| {
                                    (
                                        dispatch_duration(cost, node, pe),
                                        estimates.slot_of(&p.runfunc, pe.class_name()),
                                    )
                                })
                            })
                            .collect()
                    })
                    .collect(),
            );
        }
    }
    costs
}

/// Which engine executes a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The threaded emulation engine ([`Emulation`]): real kernels on
    /// real threads.
    Threaded,
    /// The discrete-event baseline ([`DesSimulator`]): pure virtual
    /// time, nothing executes.
    Des,
}

impl Engine {
    /// The wire name (`"threaded"` / `"des"`) used by the CLI's
    /// `--engine` flag and the serve API's `"engine"` field.
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Threaded => "threaded",
            Engine::Des => "des",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Engine::Threaded),
            "des" => Ok(Engine::Des),
            other => Err(format!("unknown engine '{other}' (use threaded or des)")),
        }
    }
}

/// A [`ScenarioSpec`] with everything both engines used to rebuild per
/// run precompiled once: compatibility preflight, shared instance
/// images, interned name table, dense cost grid, slot-assigned estimate
/// book, and the compiled fault plan. Compile once, run many — across
/// iterations, sweep workers, and engines.
pub struct CompiledScenario {
    pub(crate) spec: ScenarioSpec,
    pub(crate) fingerprint: Fingerprint,
    pub(crate) engine_key: u64,
    /// The resolved cost model (shared with the engines).
    pub(crate) cost: Arc<dyn CostModel>,
    /// The compiled fault plan, if the spec injects faults.
    pub(crate) plan: Option<Arc<FaultPlan>>,
    /// Read-only shared instance images ([`Workload::instantiate_shared`]).
    /// The DES runs directly on these; the threaded engine instantiates
    /// fresh private-memory instances per run (kernels write), but the
    /// ids and spec mapping are identical by construction, so the name
    /// table and cost grid below serve both.
    pub(crate) instances: Vec<Arc<AppInstance>>,
    pub(crate) names: Arc<NameTable>,
    pub(crate) grid: Arc<CostGrid>,
    /// The grid flattened into struct-of-arrays slabs — what the DES
    /// hot loop actually indexes (see [`ScenarioSoa`]).
    pub(crate) soa: Arc<ScenarioSoa>,
    /// Slot-assigned estimate-book prototype: slots match the grid's
    /// [`EstimateSlot`]s but carry no observations yet. Each DES run
    /// clones it; the threaded engine keeps its own book (slot layout
    /// does not affect estimates).
    pub(crate) estimates: EstimateBook,
    /// True when built by [`Self::compile_custom`]: the scheduler name
    /// is a label for a user-supplied policy, so results are never
    /// cached (the fingerprint cannot capture the policy's behaviour).
    pub(crate) custom: bool,
}

impl std::fmt::Debug for CompiledScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledScenario")
            .field("fingerprint", &self.fingerprint.to_string())
            .field("platform", &self.spec.platform.name)
            .field("scheduler", &self.spec.scheduler)
            .field("instances", &self.instances.len())
            .field("custom", &self.custom)
            .finish()
    }
}

impl CompiledScenario {
    /// Compiles a spec, validating the platform, the scheduler name,
    /// and workload/platform compatibility.
    pub fn compile(spec: ScenarioSpec) -> Result<Arc<Self>, EmuError> {
        if by_name(&spec.scheduler).is_none() {
            return Err(EmuError::Config(format!("unknown scheduler '{}'", spec.scheduler)));
        }
        Self::build(spec, false)
    }

    /// Compiles a spec whose scheduler name labels a *custom* policy
    /// supplied at run time (see [`JobRunner::run_with`]). Skips the
    /// library-name check; results of custom scenarios are never
    /// cached.
    pub fn compile_custom(spec: ScenarioSpec) -> Result<Arc<Self>, EmuError> {
        Self::build(spec, true)
    }

    fn build(spec: ScenarioSpec, custom: bool) -> Result<Arc<Self>, EmuError> {
        spec.platform.validate().map_err(EmuError::Config)?;
        preflight_compat(&spec.platform, &spec.workload, &spec.library)?;
        let instances: Vec<Arc<AppInstance>> =
            spec.workload.instantiate_shared(&spec.library)?.into_iter().map(Arc::new).collect();
        let mut interner = Interner::new();
        let names = NameTable::build(&instances, &spec.platform, &mut interner);
        let cost = spec.cost.resolve();
        let mut estimates = EstimateBook::new();
        let grid = build_cost_grid(&*cost, &spec.platform, &names, &instances, &mut estimates);
        let plan = match &spec.faults {
            Some(f) => Some(Arc::new(f.compile(&spec.platform).map_err(EmuError::Config)?)),
            None => None,
        };
        let soa = Arc::new(ScenarioSoa::build(&instances, &names, &grid, spec.platform.pes.len()));
        let fingerprint = spec.fingerprint();
        let engine_key = spec.engine_key();
        Ok(Arc::new(CompiledScenario {
            spec,
            fingerprint,
            engine_key,
            cost,
            plan,
            instances,
            names: Arc::new(names),
            grid: Arc::new(grid),
            soa,
            estimates,
            custom,
        }))
    }

    /// The spec this scenario was compiled from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The structural fingerprint (cached at compile time).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The compiled fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_deref()
    }

    /// The resolved cost model the grid was built from.
    pub fn cost(&self) -> &Arc<dyn CostModel> {
        &self.cost
    }

    /// The precompiled name table.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// The shared read-only instances.
    pub fn instances(&self) -> &[Arc<AppInstance>] {
        &self.instances
    }

    /// The dense dispatch-cost grid.
    pub fn grid(&self) -> &CostGrid {
        &self.grid
    }

    /// The grid flattened into the struct-of-arrays form the DES hot
    /// loop indexes.
    pub fn soa(&self) -> &ScenarioSoa {
        &self.soa
    }

    /// A fresh slot-assigned estimate book matching [`Self::grid`].
    pub fn estimates_prototype(&self) -> EstimateBook {
        self.estimates.clone()
    }

    /// Borrow of the slot-assigned estimate-book prototype (no clone) —
    /// warm engines reset their own book from it.
    pub fn estimates_ref(&self) -> &EstimateBook {
        &self.estimates
    }

    /// True when a run of this scenario on `engine` is a pure function
    /// of the spec — the gate for result caching. The DES always is;
    /// the threaded engine is deterministic in [`TimingMode::Modeled`]
    /// with non-measured overhead and a [`CostSpec::Table`] cost (the
    /// differential-test configuration). Custom-policy scenarios never
    /// are (the fingerprint cannot see the policy).
    pub fn deterministic(&self, engine: Engine) -> bool {
        if self.custom {
            return false;
        }
        match engine {
            Engine::Des => true,
            Engine::Threaded => {
                self.spec.timing == TimingMode::Modeled
                    && !matches!(self.spec.overhead, OverheadMode::Measured)
                    && self.spec.cost.is_deterministic()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// A bounded, thread-safe result cache keyed on `(fingerprint,
/// engine)`.
///
/// Deterministic scenario runs are pure functions of their spec, so the
/// stats of a previous run answer a repeat exactly (the cache returns
/// clones — bit-identical [`EmulationStats`]). Sweep workers share one
/// cache by cloning the handle; hit/miss totals are published through
/// `dssoc-metrics` as `dssoc_result_cache_hits` /
/// `dssoc_result_cache_misses` once [`Self::attach_metrics`] is called.
#[derive(Clone)]
pub struct ResultCache {
    inner: Arc<Mutex<CacheInner>>,
}

struct CacheInner {
    capacity: usize,
    map: HashMap<(Fingerprint, Engine), EmulationStats>,
    /// Insertion order, for bounded eviction.
    order: VecDeque<(Fingerprint, Engine)>,
    hits: u64,
    misses: u64,
    hit_cell: Option<CounterCell>,
    miss_cell: Option<CounterCell>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Arc::new(Mutex::new(CacheInner {
                capacity: capacity.max(1),
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                hit_cell: None,
                miss_cell: None,
            })),
        }
    }

    /// Publishes hit/miss counters into `registry` (counter families
    /// `dssoc_result_cache_hits` and `dssoc_result_cache_misses`).
    /// Totals accumulated before attaching are carried over.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let mut inner = self.inner.lock().expect("result cache");
        let hit = registry.counter("dssoc_result_cache_hits", &[]).cell();
        let miss = registry.counter("dssoc_result_cache_misses", &[]).cell();
        hit.add(inner.hits);
        miss.add(inner.misses);
        inner.hit_cell = Some(hit);
        inner.miss_cell = Some(miss);
    }

    /// Looks up a cached result, counting a hit or a miss.
    pub fn get(&self, fingerprint: Fingerprint, engine: Engine) -> Option<EmulationStats> {
        let mut inner = self.inner.lock().expect("result cache");
        match inner.map.get(&(fingerprint, engine)).cloned() {
            Some(stats) => {
                inner.hits += 1;
                if let Some(cell) = &inner.hit_cell {
                    cell.inc();
                }
                Some(stats)
            }
            None => {
                inner.misses += 1;
                if let Some(cell) = &inner.miss_cell {
                    cell.inc();
                }
                None
            }
        }
    }

    /// Stores a result, evicting the oldest entry when full.
    pub fn insert(&self, fingerprint: Fingerprint, engine: Engine, stats: EmulationStats) {
        let mut inner = self.inner.lock().expect("result cache");
        let key = (fingerprint, engine);
        if inner.map.insert(key, stats).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > inner.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Total lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("result cache").hits
    }

    /// Total lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("result cache").misses
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("result cache").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(128)
    }
}

// ---------------------------------------------------------------------------
// JobRunner
// ---------------------------------------------------------------------------

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The run's statistics (a cache-returned clone on a hit).
    pub stats: EmulationStats,
    /// The scenario fingerprint the result is keyed under.
    pub fingerprint: Fingerprint,
    /// The engine that produced (or would have produced) the result.
    pub engine: Engine,
    /// True when the result came from the [`ResultCache`] without
    /// running.
    pub cached: bool,
}

/// The job-execution front door: runs [`CompiledScenario`]s on either
/// engine, reusing warm engine instances and consulting a bounded
/// [`ResultCache`].
///
/// Engines are keyed by what their construction actually depends on
/// (platform + timing + overhead + cost + reservation depth), so
/// scenarios differing only in workload, scheduler, or faults share one
/// resource pool — the compiled fault plan travels with the scenario,
/// not the engine.
pub struct JobRunner {
    pub(crate) emus: HashMap<u64, Emulation>,
    pub(crate) sims: HashMap<u64, DesSimulator>,
    cache: ResultCache,
    /// Persistent trace sink applied to every run (disables caching
    /// while set). Per-run tracing goes through [`Self::run_traced`].
    trace: Option<TraceSink>,
    metrics: Option<MetricsRegistry>,
    /// Cooperative-cancel flag forwarded to DES engines on every run.
    /// Cheap to install/remove per job: a setter on the warm simulator,
    /// never an engine rebuild.
    cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// Correlation span id of the enclosing job (a flight-recorder
    /// span); stamped into the trace metadata of traced runs so the
    /// engine trace can be stitched into the job timeline.
    span: Option<u64>,
}

impl JobRunner {
    /// A runner with a default-capacity cache.
    pub fn new() -> Self {
        Self::with_cache(ResultCache::default())
    }

    /// A runner sharing an existing cache handle (how parallel sweep
    /// workers pool their results).
    pub fn with_cache(cache: ResultCache) -> Self {
        JobRunner {
            emus: HashMap::new(),
            sims: HashMap::new(),
            cache,
            trace: None,
            metrics: None,
            cancel: None,
            span: None,
        }
    }

    /// The runner's cache handle.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Replaces the cache handle.
    pub fn set_cache(&mut self, cache: ResultCache) {
        self.cache = cache;
    }

    /// Installs (or removes) a metrics registry on subsequently built
    /// engines. Warm engines are dropped so every engine publishes into
    /// the same registry.
    pub fn set_metrics(&mut self, metrics: Option<MetricsRegistry>) {
        self.metrics = metrics;
        self.emus.clear();
        self.sims.clear();
    }

    /// Installs (or removes) a persistent trace sink recording *every*
    /// run. While set, results are neither served from nor inserted
    /// into the cache. Warm engines are dropped.
    pub fn set_trace(&mut self, trace: Option<TraceSink>) {
        self.trace = trace;
        self.emus.clear();
        self.sims.clear();
    }

    /// Installs (or removes) a cooperative-cancel flag. Forwarded to
    /// the DES engine on each run (see
    /// [`DesSimulator::set_cancel`](crate::des::DesSimulator::set_cancel));
    /// a run that observes the flag set returns
    /// [`EmuError::Canceled`]. The threaded engine executes real
    /// kernels and is not interruptible. Warm engines are kept: the
    /// flag is a per-run setter, not part of engine construction.
    pub fn set_cancel(&mut self, cancel: Option<Arc<std::sync::atomic::AtomicBool>>) {
        self.cancel = cancel;
    }

    /// Installs (or removes) the enclosing job's correlation span id.
    /// A per-run setter like [`Self::set_cancel`] (warm engines are
    /// kept): traced runs stamp it into [`TraceMeta::span`] so the
    /// exported trace carries a `span_id` metadata record.
    ///
    /// [`TraceMeta::span`]: dssoc_trace::TraceMeta
    pub fn set_span(&mut self, span: Option<u64>) {
        self.span = span;
    }

    /// `(threaded, DES)` warm-engine counts — observability for tests
    /// and pool-reuse assertions.
    pub fn warm_engines(&self) -> (usize, usize) {
        (self.emus.len(), self.sims.len())
    }

    /// Compiles `spec` and runs it on `engine` with its named library
    /// scheduler — the one-call path for one-off jobs.
    pub fn run_spec(&mut self, spec: ScenarioSpec, engine: Engine) -> Result<JobResult, EmuError> {
        let scenario = CompiledScenario::compile(spec)?;
        self.run(&scenario, engine)
    }

    /// Runs a compiled scenario on `engine` with its named library
    /// scheduler (a fresh policy instance per call).
    pub fn run(
        &mut self,
        scenario: &Arc<CompiledScenario>,
        engine: Engine,
    ) -> Result<JobResult, EmuError> {
        let mut sched = by_name(&scenario.spec.scheduler).ok_or_else(|| {
            EmuError::Config(format!("unknown scheduler '{}'", scenario.spec.scheduler))
        })?;
        self.run_with(scenario, engine, sched.as_mut())
    }

    /// Runs a compiled scenario with an explicit scheduler instance
    /// (the path for custom policies and scheduler-reuse experiments).
    pub fn run_with(
        &mut self,
        scenario: &Arc<CompiledScenario>,
        engine: Engine,
        scheduler: &mut dyn Scheduler,
    ) -> Result<JobResult, EmuError> {
        let fingerprint = scenario.fingerprint;
        let cacheable = self.trace.is_none() && scenario.deterministic(engine);
        if cacheable {
            if let Some(stats) = self.cache.get(fingerprint, engine) {
                return Ok(JobResult { stats, fingerprint, engine, cached: true });
            }
        }
        let stats = self.execute(scenario, engine, scheduler, None)?;
        if cacheable {
            self.cache.insert(fingerprint, engine, stats.clone());
        }
        Ok(JobResult { stats, fingerprint, engine, cached: false })
    }

    /// Runs a compiled scenario once with `sink` tracing this run only.
    /// Traced runs bypass the cache in both directions.
    pub fn run_traced(
        &mut self,
        scenario: &Arc<CompiledScenario>,
        engine: Engine,
        scheduler: &mut dyn Scheduler,
        sink: TraceSink,
    ) -> Result<JobResult, EmuError> {
        let stats = self.execute(scenario, engine, scheduler, Some(sink))?;
        Ok(JobResult { stats, fingerprint: scenario.fingerprint, engine, cached: false })
    }

    fn execute(
        &mut self,
        scenario: &Arc<CompiledScenario>,
        engine: Engine,
        scheduler: &mut dyn Scheduler,
        trace: Option<TraceSink>,
    ) -> Result<EmulationStats, EmuError> {
        let base_trace = self.trace.clone();
        if let (Some(span), Some(sink)) = (self.span, trace.as_ref()) {
            sink.set_span(&format!("{span:016x}"));
        }
        match engine {
            Engine::Threaded => {
                let emu = self.emulation_for(scenario)?;
                if let Some(sink) = &trace {
                    emu.set_trace(Some(sink.clone()));
                }
                let result = emu.run_compiled(scheduler, scenario);
                if trace.is_some() {
                    emu.set_trace(base_trace);
                }
                result
            }
            Engine::Des => {
                let cancel = self.cancel.clone();
                let sim = self.simulator_for(scenario)?;
                if let Some(sink) = &trace {
                    sim.set_trace(Some(sink.clone()));
                }
                sim.set_cancel(cancel);
                let result = sim.run_compiled(scheduler, scenario);
                sim.set_cancel(None);
                if trace.is_some() {
                    sim.set_trace(base_trace);
                }
                result
            }
        }
    }

    fn emulation_for(&mut self, sc: &CompiledScenario) -> Result<&mut Emulation, EmuError> {
        match self.emus.entry(sc.engine_key) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let spec = &sc.spec;
                let config = EmulationConfig {
                    timing: spec.timing,
                    overhead: spec.overhead,
                    cost: spec.cost.clone(),
                    reservation_depth: spec.reservation_depth,
                    trace: self.trace.clone(),
                    // The compiled plan travels with the scenario.
                    faults: None,
                    metrics: self.metrics.clone(),
                };
                Ok(e.insert(Emulation::with_config(Arc::clone(&spec.platform), config)?))
            }
        }
    }

    fn simulator_for(&mut self, sc: &CompiledScenario) -> Result<&mut DesSimulator, EmuError> {
        match self.sims.entry(sc.engine_key) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.into_mut()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let spec = &sc.spec;
                let config = DesConfig {
                    cost: spec.cost.clone(),
                    overhead_per_invocation: match spec.overhead {
                        OverheadMode::Fixed(d) => d,
                        OverheadMode::Measured | OverheadMode::None => Duration::ZERO,
                    },
                    trace: self.trace.clone(),
                    faults: None,
                    metrics: self.metrics.clone(),
                };
                Ok(e.insert(DesSimulator::new(Arc::clone(&spec.platform), config)?))
            }
        }
    }
}

impl Default for JobRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::OnceLock;

    /// An empty stats record for cache plumbing tests.
    fn empty_stats() -> EmulationStats {
        EmulationStats {
            platform: String::new(),
            scheduler: String::new(),
            makespan: Duration::ZERO,
            tasks: Default::default(),
            apps: Vec::new(),
            pe_busy: BTreeMap::new(),
            pe_names: BTreeMap::new(),
            sched_invocations: 0,
            overhead: Default::default(),
            reliability: Default::default(),
            instances: Vec::new(),
            app_agg: OnceLock::new(),
        }
    }

    // Compiled scenarios must be shareable across sweep workers.
    fn _assert_send_sync<T: Send + Sync>() {}
    #[allow(dead_code)]
    fn _compiled_scenario_is_shareable() {
        _assert_send_sync::<Arc<CompiledScenario>>();
        _assert_send_sync::<ResultCache>();
    }

    #[test]
    fn fingerprint_and_engine_wire_round_trips() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef);
        assert_eq!(fp.to_string(), "0123456789abcdef");
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("123"), None, "length-checked");
        assert_eq!(Fingerprint::parse("zzzzzzzzzzzzzzzz"), None);
        assert_eq!("threaded".parse::<Engine>(), Ok(Engine::Threaded));
        assert_eq!("des".parse::<Engine>(), Ok(Engine::Des));
        assert_eq!(Engine::Des.to_string(), "des");
        assert!("qemu".parse::<Engine>().unwrap_err().contains("qemu"));
    }

    #[test]
    fn platform_preset_matches_cli_grammar() {
        let p = platform_preset("zcu102:2C+1F").unwrap();
        assert_eq!(p.cpu_count(), 2);
        assert_eq!(p.accel_count(), 1);
        let p = platform_preset("odroid:3b+2l").unwrap();
        assert_eq!(p.cpu_count(), 5);
        assert!(platform_preset("zcu102").is_err());
        assert!(platform_preset("zcu102:4C+0F").is_err());
        assert!(platform_preset("riscv:1C+0F").is_err());
        assert!(platform_preset("odroid:5B+0L").is_err());
        assert!(platform_preset("zcu102:0C+0F").is_err());
    }

    #[test]
    fn cost_spec_resolves_and_debugs() {
        let mut table = CostTable::new();
        table.set("k", "cortex-a53", Duration::from_micros(5));
        let spec = CostSpec::table(table.clone());
        assert!(spec.is_deterministic());
        let plat = zcu102(1, 0);
        let model = spec.resolve();
        assert_eq!(
            model.task_duration("k", &plat.pes[0], Duration::ZERO),
            Some(Duration::from_micros(5))
        );
        assert_eq!(format!("{spec:?}"), "Table(1 entry(s))");
        let sm = CostSpec::ScaledMeasured(Arc::new(table));
        assert!(!sm.is_deterministic());
        // Scaled-measured still scales measurements; the table only
        // feeds estimates.
        let d = sm.resolve().task_duration("k", &plat.pes[0], Duration::from_millis(1)).unwrap();
        assert!(d > Duration::from_millis(1));
    }

    #[test]
    fn cost_spec_model_hashes_by_identity() {
        let a: Arc<dyn CostModel> = Arc::new(ScaledMeasuredCost::default());
        let one = CostSpec::Model(Arc::clone(&a));
        let two = CostSpec::Model(a);
        let three = CostSpec::Model(Arc::new(ScaledMeasuredCost::default()));
        assert_eq!(one.hash_into(0), two.hash_into(0), "same instance, same hash");
        assert_ne!(one.hash_into(0), three.hash_into(0), "distinct instances differ");
        assert!(!one.is_deterministic());
    }

    #[test]
    fn result_cache_bounds_and_counts() {
        let cache = ResultCache::new(2);
        assert!(cache.is_empty());
        let stats = empty_stats();
        cache.insert(Fingerprint(1), Engine::Des, stats.clone());
        cache.insert(Fingerprint(2), Engine::Des, stats.clone());
        assert!(cache.get(Fingerprint(1), Engine::Des).is_some());
        // Same fingerprint, other engine: distinct key.
        assert!(cache.get(Fingerprint(1), Engine::Threaded).is_none());
        cache.insert(Fingerprint(3), Engine::Des, stats);
        assert_eq!(cache.len(), 2, "bounded: oldest evicted");
        assert!(cache.get(Fingerprint(1), Engine::Des).is_none(), "1 was oldest");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn result_cache_publishes_counters() {
        let cache = ResultCache::new(4);
        cache.insert(Fingerprint(7), Engine::Des, empty_stats());
        let _ = cache.get(Fingerprint(7), Engine::Des); // pre-attach hit
        let registry = MetricsRegistry::new();
        cache.attach_metrics(&registry);
        let _ = cache.get(Fingerprint(7), Engine::Des);
        let _ = cache.get(Fingerprint(8), Engine::Des);
        let snap = registry.snapshot();
        assert_eq!(snap.value("dssoc_result_cache_hits", &[]), Some(2.0), "carried + live");
        assert_eq!(snap.value("dssoc_result_cache_misses", &[]), Some(1.0));
    }

    #[test]
    fn builder_validates_platform_and_scheduler() {
        let library = Arc::new(AppLibrary::new());
        let workload = Arc::new(Workload { entries: Vec::new(), time_frame: None });
        let err = ScenarioSpec::builder()
            .library(Arc::clone(&library))
            .workload(Arc::clone(&workload))
            .platform_named("zcu102:9C+0F")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at most 3"), "{err}");
        let err = ScenarioSpec::builder()
            .library(Arc::clone(&library))
            .workload(Arc::clone(&workload))
            .platform_named("zcu102:1C+0F")
            .scheduler("heft")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown scheduler 'heft'"), "{err}");
        let spec = ScenarioSpec::builder()
            .library(library)
            .workload(workload)
            .platform_named("zcu102:1C+0F")
            .build()
            .unwrap();
        assert_eq!(spec.scheduler, "frfs");
        assert_eq!(spec.platform.name, "zcu102-1C+0F");
    }

    #[test]
    fn fingerprint_ignores_arc_identity_and_case() {
        let library = Arc::new(AppLibrary::new());
        let workload = Workload {
            entries: vec![dssoc_appmodel::workload::WorkloadEntry {
                app_name: "a".into(),
                arrival: Duration::ZERO,
            }],
            time_frame: None,
        };
        let build = |sched: &str| ScenarioSpec {
            library: Arc::new((*library).clone()),
            platform: Arc::new(zcu102(2, 1)),
            scheduler: sched.to_string(),
            workload: Arc::new(workload.clone()),
            timing: TimingMode::Modeled,
            overhead: OverheadMode::None,
            cost: CostSpec::table(CostTable::new()),
            reservation_depth: 0,
            faults: None,
        };
        assert_eq!(build("frfs").fingerprint(), build("FRFS").fingerprint());
        let mut other = build("frfs");
        other.reservation_depth = 1;
        assert_ne!(build("frfs").fingerprint(), other.fingerprint());
    }
}
