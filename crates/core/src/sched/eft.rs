//! Earliest Finish Time: assigns each ready task to the PE — busy or
//! idle — that minimizes its projected finish time, keeping per-PE load
//! projections across the whole ready list.
//!
//! This is the `O(n^2)` policy of the paper's complexity discussion: for
//! every ready task it evaluates every PE's projected availability
//! (updated as earlier tasks in the same round are placed), so its
//! per-invocation cost grows with both the ready-queue length and the PE
//! count — the overhead that makes EFT *lose* to FRFS at high injection
//! rates (Fig. 10).
//!
//! Only assignments whose chosen PE is currently idle are dispatched;
//! a task whose earliest finish lands on a busy PE waits for it (that is
//! the EFT decision) and is reconsidered next round.

use std::time::Duration;

use crate::sched::{Assignment, PeView, SchedContext, Scheduler};
use crate::task::ReadyTask;
use crate::time::SimTime;

/// Earliest Finish Time scheduler.
#[derive(Debug, Default, Clone)]
pub struct EftScheduler;

impl EftScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        EftScheduler
    }
}

impl Scheduler for EftScheduler {
    fn name(&self) -> &'static str {
        "EFT"
    }

    fn schedule(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        ctx: &SchedContext<'_>,
    ) -> Vec<Assignment> {
        // Projected availability per PE, advanced as this round places tasks.
        let mut avail: Vec<SimTime> = pes.iter().map(|v| v.available_at.max(ctx.now)).collect();
        // Whether the *current* dispatch may use the PE (it must be idle
        // and not already given a task this round).
        let mut dispatchable: Vec<bool> = pes.iter().map(|v| v.idle).collect();

        let mut out = Vec::new();
        for (i, rt) in ready.iter().enumerate() {
            let task = &rt.task;
            // Full O(PEs) scan with cost lookups — deliberate, this IS
            // the algorithm's cost.
            let mut best: Option<(usize, SimTime, Duration)> = None;
            for (p, view) in pes.iter().enumerate() {
                let Some(exec) = ctx.estimates.estimate(task, view.pe) else { continue };
                let finish = avail[p] + exec;
                match best {
                    Some((_, bf, _)) if finish >= bf => {}
                    _ => best = Some((p, finish, exec)),
                }
            }
            let Some((p, finish, _exec)) = best else { continue };
            // Commit the projection so later tasks see the load.
            avail[p] = finish;
            if dispatchable[p] {
                dispatchable[p] = false;
                out.push(Assignment { ready_idx: i, pe: pes[p].pe.id });
            }
            // else: EFT chose a busy PE — the task waits for it.
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::*;
    use crate::sched::EstimateBook;

    fn ctx(book: &EstimateBook) -> SchedContext<'_> {
        SchedContext { now: SimTime::ZERO, estimates: book }
    }

    #[test]
    fn spreads_load_across_pes() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        // Four fft-capable... (tasks 0 and 2) and two cpu-only tasks.
        let ready = ready_tasks(4, 30.0);
        let book = EstimateBook::new();
        let mut s = EftScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_contract(&ready, &views, &out);
        // All three PEs should be used this round.
        assert_eq!(out.len(), 3);
        let mut pes_used: Vec<_> = out.iter().map(|a| a.pe).collect();
        pes_used.sort();
        pes_used.dedup();
        assert_eq!(pes_used.len(), 3);
    }

    #[test]
    fn defers_task_to_preferred_busy_pe() {
        let cfg = platform_2c1f();
        let mut views = idle_views(&cfg);
        // The accelerator is busy but frees up almost immediately, while
        // CPU execution would take 100x longer: EFT waits for the device.
        views[2].idle = false;
        views[2].available_at = SimTime(1_000); // 1 us from now
        let ready = ready_tasks(1, 5.0); // fft exec: 5 us, cpu: 100 us
        let book = EstimateBook::new();
        let mut s = EftScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert!(out.is_empty(), "task should wait for the soon-free accelerator");
    }

    #[test]
    fn takes_idle_pe_when_busy_one_is_far_out() {
        let cfg = platform_2c1f();
        let mut views = idle_views(&cfg);
        views[2].idle = false;
        views[2].available_at = SimTime(10_000_000); // 10 ms out
        let ready = ready_tasks(1, 5.0);
        let book = EstimateBook::new();
        let mut s = EftScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_eq!(out.len(), 1, "a CPU core finishing sooner should win");
        assert!(out[0].pe == cfg.pes[0].id || out[0].pe == cfg.pes[1].id);
    }

    #[test]
    fn projections_accumulate_within_round() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        // Two fft-capable tasks, accelerator much cheaper: the first
        // takes it, the second sees the projection and goes to a core
        // only if that finishes earlier than queueing on the device.
        // fft = 30, cpu = 100: queued-fft finish = 60 < 100 -> second
        // task also "chooses" the accelerator and is deferred.
        let mut ready = ready_tasks(4, 30.0);
        ready.remove(3);
        ready.remove(1);
        let book = EstimateBook::new();
        let mut s = EftScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pe, cfg.pes[2].id);
    }

    #[test]
    fn empty_ready_list() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        let book = EstimateBook::new();
        let mut s = EftScheduler::new();
        assert!(s.schedule(&[], &views, &ctx(&book)).is_empty());
    }
}
