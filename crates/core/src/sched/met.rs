//! Minimum Execution Time: each ready task is evaluated against every
//! PE and dispatched to the idle compatible PE with the smallest
//! estimated execution time.
//!
//! The paper-visible consequence: unlike FRFS, the policy walks the
//! *entire* ready queue computing cost estimates on every invocation
//! (`O(n)` in the paper's complexity discussion), so its overhead grows
//! with the injection rate (Fig. 10b) and that overhead feeds back into
//! workload execution time (Fig. 10a) — sophistication losing to a
//! cheap heuristic once scheduling runs on every task completion.

use std::time::Duration;

use crate::sched::{Assignment, PeView, SchedContext, Scheduler};
use crate::task::ReadyTask;

/// Minimum Execution Time scheduler.
#[derive(Debug, Default, Clone)]
pub struct MetScheduler;

impl MetScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        MetScheduler
    }
}

impl Scheduler for MetScheduler {
    fn name(&self) -> &'static str {
        "MET"
    }

    fn schedule(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        ctx: &SchedContext<'_>,
    ) -> Vec<Assignment> {
        let mut taken = vec![false; pes.len()];
        let mut out = Vec::new();
        // Deliberately no early exit: MET evaluates the whole ready
        // queue each invocation — this IS the O(n) cost the paper
        // measures.
        for (i, rt) in ready.iter().enumerate() {
            let task = &rt.task;
            let best = pes
                .iter()
                .enumerate()
                .filter(|(p, v)| v.idle && !taken[*p] && task.supports(&v.pe.platform_key))
                .min_by_key(|(_, v)| ctx.estimates.estimate(task, v.pe).unwrap_or(Duration::MAX))
                .map(|(p, _)| p);
            if let Some(slot) = best {
                taken[slot] = true;
                out.push(Assignment { ready_idx: i, pe: pes[slot].pe.id });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::*;
    use crate::sched::EstimateBook;
    use crate::time::SimTime;

    fn ctx(book: &EstimateBook) -> SchedContext<'_> {
        SchedContext { now: SimTime::ZERO, estimates: book }
    }

    #[test]
    fn picks_cheapest_pe_per_task() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        // FFT estimate (30 us) cheaper than CPU (100 us): even tasks
        // should prefer the accelerator.
        let ready = ready_tasks(1, 30.0);
        let book = EstimateBook::new();
        let mut s = MetScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_contract(&ready, &views, &out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pe, cfg.pes[2].id, "fft PE is the MET choice");
    }

    #[test]
    fn avoids_expensive_accelerator() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        // FFT estimate (500 us) pricier than CPU (100 us): stay on cores.
        let ready = ready_tasks(1, 500.0);
        let book = EstimateBook::new();
        let mut s = MetScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_eq!(out[0].pe, cfg.pes[0].id);
    }

    #[test]
    fn falls_back_when_cheapest_taken() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        // Two fft-capable tasks, one cheap accelerator: the second task
        // settles for a core.
        let mut ready = ready_tasks(4, 30.0);
        ready.remove(3);
        ready.remove(1); // keep the two even (fft-capable) tasks
        let book = EstimateBook::new();
        let mut s = MetScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_contract(&ready, &views, &out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pe, cfg.pes[2].id);
        assert!(out[1].pe == cfg.pes[0].id || out[1].pe == cfg.pes[1].id);
    }

    #[test]
    fn leaves_task_when_nothing_idle() {
        let cfg = platform_2c1f();
        let mut views = idle_views(&cfg);
        for v in &mut views {
            v.idle = false;
        }
        let ready = ready_tasks(2, 30.0);
        let book = EstimateBook::new();
        let mut s = MetScheduler::new();
        assert!(s.schedule(&ready, &views, &ctx(&book)).is_empty());
    }
}
