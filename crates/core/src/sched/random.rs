//! RANDOM: each ready task goes to a uniformly random idle compatible PE.
//!
//! The library's baseline policy — useful as a lower bound in scheduler
//! comparisons and for shaking out ordering assumptions in tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sched::{idle_compatible, Assignment, PeView, SchedContext, Scheduler};
use crate::task::ReadyTask;

/// Uniformly random scheduler (seedable for reproducibility).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates the policy with a fixed seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "RANDOM"
    }

    fn uses_estimates(&self) -> bool {
        false
    }

    fn schedule(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        _ctx: &SchedContext<'_>,
    ) -> Vec<Assignment> {
        let mut taken = vec![false; pes.len()];
        let mut free = pes.iter().filter(|v| v.idle).count();
        let mut out = Vec::new();
        for (i, rt) in ready.iter().enumerate() {
            if free == 0 {
                break;
            }
            let candidates: Vec<usize> =
                idle_compatible(&rt.task, pes).filter(|&p| !taken[p]).collect();
            if candidates.is_empty() {
                continue;
            }
            let slot = candidates[self.rng.gen_range(0..candidates.len())];
            taken[slot] = true;
            free -= 1;
            out.push(Assignment { ready_idx: i, pe: pes[slot].pe.id });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::*;
    use crate::sched::EstimateBook;
    use crate::time::SimTime;
    use std::collections::HashSet;

    fn ctx(book: &EstimateBook) -> SchedContext<'_> {
        SchedContext { now: SimTime::ZERO, estimates: book }
    }

    #[test]
    fn honors_contract() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        let ready = ready_tasks(6, 70.0);
        let book = EstimateBook::new();
        let mut s = RandomScheduler::seeded(1);
        for _ in 0..20 {
            let out = s.schedule(&ready, &views, &ctx(&book));
            assert_contract(&ready, &views, &out);
            assert_eq!(out.len(), 3, "all three PEs get work with 6 ready tasks");
        }
    }

    #[test]
    fn is_seed_reproducible_and_actually_random() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        let ready = ready_tasks(6, 70.0);
        let book = EstimateBook::new();

        let run = |seed: u64| {
            let mut s = RandomScheduler::seeded(seed);
            (0..10).map(|_| s.schedule(&ready, &views, &ctx(&book))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));

        // Across seeds, the PE chosen for task 0 should vary.
        let mut pes_seen = HashSet::new();
        for seed in 0..20 {
            let out = run(seed);
            if let Some(a) = out[0].iter().find(|a| a.ready_idx == 0) {
                pes_seen.insert(a.pe);
            }
        }
        assert!(pes_seen.len() > 1, "task 0 always got the same PE across seeds");
    }

    #[test]
    fn cpu_only_task_never_lands_on_accelerator() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        let ready = ready_tasks(2, 70.0); // task 1 is cpu-only
        let book = EstimateBook::new();
        let mut s = RandomScheduler::seeded(3);
        for _ in 0..50 {
            let out = s.schedule(&ready, &views, &ctx(&book));
            for a in out.iter().filter(|a| a.ready_idx == 1) {
                assert_ne!(a.pe, cfg.pes[2].id);
            }
        }
    }
}
