//! The scheduling library and the user-scheduler integration point.
//!
//! "At run-time, the user is given the option to select either one of the
//! available scheduling policies from the library or use the custom
//! scheduling algorithm. The default scheduling library is composed of
//! minimum execution time (MET), first ready-first start (FRFS), earliest
//! finish time (EFT), and random (RANDOM)." (paper §II-C)
//!
//! A policy receives the ready task list and a view of every PE's
//! availability (the paper's resource-handler states), and returns
//! task→PE assignments. Integrating a new algorithm means implementing
//! [`Scheduler`] — the emulation engine dispatches whatever it returns,
//! enforcing the safety contract (idle PEs only, no double assignment,
//! platform compatibility) with debug assertions.

mod eft;
mod frfs;
mod met;
mod random;

pub use eft::EftScheduler;
pub use frfs::FrfsScheduler;
pub use met::MetScheduler;
pub use random::RandomScheduler;

use std::collections::HashMap;
use std::time::Duration;

use dssoc_platform::pe::{PeDescriptor, PeId};

use crate::task::{ReadyTask, Task};
use crate::time::SimTime;

/// What the scheduler sees of one PE.
#[derive(Debug, Clone)]
pub struct PeView<'a> {
    /// The PE's descriptor (type, speed, platform key).
    pub pe: &'a PeDescriptor,
    /// True if the resource handler reports *idle*.
    pub idle: bool,
    /// Estimated emulation time at which the PE becomes available:
    /// `now` when idle, otherwise the running task's projected finish.
    pub available_at: SimTime,
}

/// One task→PE mapping decided by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Index into the ready slice passed to [`Scheduler::schedule`].
    pub ready_idx: usize,
    /// Destination PE (must be idle and compatible).
    pub pe: PeId,
}

/// FNV-1a for the estimate book's keys: the book is updated and queried
/// per completed task in both engines, its keys are short kernel/class
/// names from trusted application JSON, and nothing iterates it in an
/// order-sensitive way — a multiply-xor hash beats SipHash here.
#[derive(Debug, Clone, Copy, Default)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = Fnv1a;
    fn build_hasher(&self) -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

#[derive(Debug)]
struct Fnv1a(u64);

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// A pre-resolved `(runfunc, PE class)` key into an [`EstimateBook`]
/// (see [`EstimateBook::slot_of`]). Only meaningful for the book that
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimateSlot(u32);

impl EstimateSlot {
    /// The raw slot index, for engines that pack slots into dense
    /// per-scenario arrays (the DES SoA tables).
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a slot from [`Self::raw`]. Only meaningful against the
    /// book (or a clone of the book) that issued the raw index.
    pub(crate) fn from_raw(v: u32) -> Self {
        EstimateSlot(v)
    }
}

/// Execution-time estimates learned from completed tasks, used by
/// cost-aware policies (MET, EFT). Keyed by `(runfunc, PE class)`;
/// an exponentially weighted moving average smooths noise.
///
/// The string-keyed maps resolve a key to a stable slot in a value
/// vector; engines that know their `(runfunc, class)` pairs up front
/// (the DES does) resolve each once via [`Self::slot_of`] and feed
/// observations through [`Self::observe_at`], skipping both hash
/// lookups on the per-completion path.
#[derive(Debug, Default, Clone)]
pub struct EstimateBook {
    // runfunc -> PE class -> slot in `values` (nested so lookups borrow).
    slots: HashMap<String, HashMap<String, EstimateSlot, FnvBuild>, FnvBuild>,
    // EWMA durations; `None` = slot reserved but nothing observed yet.
    values: Vec<Option<Duration>>,
}

impl EstimateBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot for `(runfunc, class)`, reserving one on first sight.
    /// Reserving is not observing: [`Self::estimate`] ignores slots
    /// without observations.
    pub fn slot_of(&mut self, runfunc: &str, class: &str) -> EstimateSlot {
        let per_class = match self.slots.get_mut(runfunc) {
            Some(m) => m,
            None => self.slots.entry(runfunc.to_string()).or_default(),
        };
        match per_class.get(class) {
            Some(&slot) => slot,
            None => {
                let slot = EstimateSlot(self.values.len() as u32);
                self.values.push(None);
                per_class.insert(class.to_string(), slot);
                slot
            }
        }
    }

    /// Records an observed modeled duration for `(runfunc, class)`.
    pub fn observe(&mut self, runfunc: &str, class: &str, d: Duration) {
        let slot = self.slot_of(runfunc, class);
        self.observe_at(slot, d);
    }

    /// Records an observed modeled duration at a slot previously
    /// resolved by [`Self::slot_of`] — the hash-free fast path. Same
    /// EWMA arithmetic as [`Self::observe`], so mixing the two paths
    /// (as the two engines do) yields identical books.
    pub fn observe_at(&mut self, slot: EstimateSlot, d: Duration) {
        let entry = &mut self.values[slot.0 as usize];
        // alpha = 0.25
        *entry = Some(match entry {
            Some(prev) => {
                Duration::from_secs_f64(0.75 * prev.as_secs_f64() + 0.25 * d.as_secs_f64())
            }
            None => d,
        });
    }

    /// Estimates `task`'s execution time on `pe`.
    ///
    /// Priority: the JSON's per-platform `mean_exec_us`, then the
    /// observed EWMA, then a speed-scaled default (100 µs of host work) —
    /// so cost-aware policies degrade gracefully on unprofiled kernels.
    /// Returns `None` if the task does not support the PE at all.
    pub fn estimate(&self, task: &Task, pe: &PeDescriptor) -> Option<Duration> {
        let platform = task.node().platform(&pe.platform_key)?;
        if let Some(d) = platform.mean_exec {
            return Some(d);
        }
        if let Some(d) = self
            .slots
            .get(&platform.runfunc)
            .and_then(|m| m.get(pe.class_name()))
            .and_then(|slot| self.values[slot.0 as usize])
        {
            return Some(d);
        }
        Some(Duration::from_secs_f64(100e-6 / pe.speed()))
    }

    /// Makes this book a copy of `proto` (slot map and values), reusing
    /// existing allocations where the collections allow. The warm-run
    /// reset path for books whose slot map came from a *different*
    /// scenario (or nowhere).
    pub fn reset_from(&mut self, proto: &EstimateBook) {
        self.slots.clone_from(&proto.slots);
        self.values.clone_from(&proto.values);
    }

    /// Values-only reset: overwrites the EWMA vector from `proto`,
    /// leaving the slot map untouched. Sound only when this book's slot
    /// map is already identical to `proto`'s — the DES guarantees that
    /// by keying reuse on the compiled scenario's fingerprint (slots are
    /// never added during a run; only [`Self::observe_at`] runs there).
    pub fn reset_values_from(&mut self, proto: &EstimateBook) {
        debug_assert_eq!(self.values.len(), proto.values.len());
        self.values.clone_from(&proto.values);
    }

    /// Number of `(runfunc, class)` pairs observed so far.
    pub fn len(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-invocation context handed to policies.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// Current emulation time.
    pub now: SimTime,
    /// Learned execution-time estimates.
    pub estimates: &'a EstimateBook,
}

/// A scheduling policy.
pub trait Scheduler: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Maps ready tasks onto PEs. Contract:
    ///
    /// * only assign to PEs with `idle == true`;
    /// * at most one assignment per PE and per ready task;
    /// * `ready[a.ready_idx]` must support `pe.platform_key`.
    ///
    /// The engine guarantees `ready` is ordered by ascending `seq`
    /// (readiness order), so policies can rely on slice order instead of
    /// sorting — which is what keeps FRFS's per-invocation cost
    /// proportional to the PE count (the paper's flat Fig. 10b line).
    ///
    /// Tasks left unassigned stay in the ready list for the next round.
    fn schedule(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        ctx: &SchedContext<'_>,
    ) -> Vec<Assignment>;

    /// Allocation-aware variant: append assignments to `out` (cleared by
    /// the caller) instead of returning a fresh vector. Hot-loop engines
    /// call this with a reused buffer; the default forwards to
    /// [`Self::schedule`], so existing policies need no change. Policies
    /// on an engine's per-event path should override it and implement
    /// `schedule` as a thin wrapper.
    fn schedule_into(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        ctx: &SchedContext<'_>,
        out: &mut Vec<Assignment>,
    ) {
        out.extend(self.schedule(ready, pes, ctx));
    }

    /// True when this policy is *strict FIFO, first idle compatible PE
    /// in descriptor order* — i.e. its assignments are exactly what
    /// [`FrfsScheduler`] produces from the documented contract, with no
    /// internal state carried between invocations. An engine may then
    /// compute the identical assignment set through a dense internal
    /// path (no `PeView` materialization, no virtual dispatch, no
    /// post-hoc contract validation); observable behavior must be
    /// indistinguishable. `schedule`/`schedule_into` remain the source
    /// of truth and must stay equivalent.
    fn dense_fifo(&self) -> bool {
        false
    }

    /// True when the policy reads `ctx.estimates`. Engines use this to
    /// skip maintaining the learned-estimate EWMA when nothing can
    /// observe it (the book is scratch state, not part of the run's
    /// output). The conservative default is `true`; only policies that
    /// provably never touch `ctx.estimates` should override.
    fn uses_estimates(&self) -> bool {
        true
    }
}

/// Builds a library scheduler by name (`"frfs"`, `"met"`, `"eft"`,
/// `"random"`), mirroring the paper's run-time policy selection.
pub fn by_name(name: &str) -> Option<Box<dyn Scheduler>> {
    match name.to_ascii_lowercase().as_str() {
        "frfs" => Some(Box::new(FrfsScheduler::new())),
        "met" => Some(Box::new(MetScheduler::new())),
        "eft" => Some(Box::new(EftScheduler::new())),
        "random" => Some(Box::new(RandomScheduler::seeded(0))),
        _ => None,
    }
}

/// Shared helper: indices of idle PEs compatible with `task`.
pub(crate) fn idle_compatible<'a>(
    task: &'a Task,
    pes: &'a [PeView<'a>],
) -> impl Iterator<Item = usize> + 'a {
    pes.iter()
        .enumerate()
        .filter(move |(_, v)| v.idle && task.supports(&v.pe.platform_key))
        .map(|(i, _)| i)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for scheduler unit tests.

    use super::*;
    use dssoc_appmodel::app::ApplicationSpec;
    use dssoc_appmodel::instance::{AppInstance, InstanceId};
    use dssoc_appmodel::json::{AppJson, NodeJson, PlatformJson};
    use dssoc_appmodel::registry::KernelRegistry;
    use dssoc_platform::pe::PlatformConfig;
    use dssoc_platform::presets::zcu102;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Builds `n` independent ready tasks; node `i` supports "cpu", and
    /// even-indexed nodes also support "fft". Per-platform estimates:
    /// cpu = 100 µs, fft = `fft_us` µs.
    pub fn ready_tasks(n: usize, fft_us: f64) -> Vec<ReadyTask> {
        let mut reg = KernelRegistry::new();
        reg.register_fn("t.so", "kc", |_| Ok(()));
        reg.register_fn("t.so", "ka", |_| Ok(()));
        let mut dag = BTreeMap::new();
        for i in 0..n {
            let mut platforms = vec![PlatformJson {
                name: "cpu".into(),
                runfunc: "kc".into(),
                shared_object: None,
                mean_exec_us: Some(100.0),
            }];
            if i % 2 == 0 {
                platforms.push(PlatformJson {
                    name: "fft".into(),
                    runfunc: "ka".into(),
                    shared_object: None,
                    mean_exec_us: Some(fft_us),
                });
            }
            dag.insert(
                format!("n{i:03}"),
                NodeJson { arguments: vec![], predecessors: vec![], successors: vec![], platforms },
            );
        }
        let json = AppJson {
            app_name: "fixture".into(),
            shared_object: "t.so".into(),
            variables: BTreeMap::new(),
            dag,
        };
        let spec = ApplicationSpec::from_json(&json, &reg).unwrap();
        let inst = Arc::new(
            AppInstance::instantiate(spec, InstanceId(0), std::time::Duration::ZERO).unwrap(),
        );
        (0..n)
            .map(|i| ReadyTask {
                task: Task { instance: Arc::clone(&inst), node_idx: i },
                ready_at: SimTime(i as u64),
                seq: i as u64,
            })
            .collect()
    }

    /// A 2-CPU + 1-FFT platform and all-idle views of it.
    pub fn platform_2c1f() -> PlatformConfig {
        zcu102(2, 1)
    }

    /// Builds all-idle PE views for a platform.
    pub fn idle_views(cfg: &PlatformConfig) -> Vec<PeView<'_>> {
        cfg.pes.iter().map(|pe| PeView { pe, idle: true, available_at: SimTime::ZERO }).collect()
    }

    /// Checks the scheduler contract on a result.
    pub fn assert_contract(ready: &[ReadyTask], pes: &[PeView<'_>], out: &[Assignment]) {
        let mut used_pe = std::collections::HashSet::new();
        let mut used_task = std::collections::HashSet::new();
        for a in out {
            let view = pes.iter().find(|v| v.pe.id == a.pe).expect("assignment to unknown PE");
            assert!(view.idle, "assigned to busy PE");
            assert!(used_pe.insert(a.pe), "PE assigned twice");
            assert!(used_task.insert(a.ready_idx), "task assigned twice");
            assert!(
                ready[a.ready_idx].task.supports(&view.pe.platform_key),
                "incompatible assignment"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn by_name_builds_library_policies() {
        for (name, expect) in
            [("frfs", "FRFS"), ("MET", "MET"), ("eft", "EFT"), ("Random", "RANDOM")]
        {
            let s = by_name(name).unwrap_or_else(|| panic!("policy {name}"));
            assert_eq!(s.name(), expect);
        }
        assert!(by_name("heft").is_none());
    }

    #[test]
    fn estimate_book_priorities() {
        let cfg = platform_2c1f();
        let ready = ready_tasks(2, 70.0);
        let cpu_pe = &cfg.pes[0];
        let fft_pe = &cfg.pes[2];
        let mut book = EstimateBook::new();

        // JSON mean_exec wins even after observations.
        let t0 = &ready[0].task;
        assert_eq!(book.estimate(t0, cpu_pe).unwrap(), std::time::Duration::from_micros(100));
        assert_eq!(book.estimate(t0, fft_pe).unwrap(), std::time::Duration::from_micros(70));

        // Odd task doesn't support fft.
        assert!(book.estimate(&ready[1].task, fft_pe).is_none());

        // EWMA path: a kernel with no JSON estimate.
        book.observe("kx", "cortex-a53", std::time::Duration::from_micros(40));
        book.observe("kx", "cortex-a53", std::time::Duration::from_micros(80));
        let d = book.values[book.slots["kx"]["cortex-a53"].0 as usize].unwrap();
        assert!(
            d > std::time::Duration::from_micros(40) && d < std::time::Duration::from_micros(80)
        );
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn idle_compatible_filters() {
        let cfg = platform_2c1f();
        let mut views = idle_views(&cfg);
        let ready = ready_tasks(2, 70.0);
        // Even task: all three PEs compatible.
        let all: Vec<usize> = idle_compatible(&ready[0].task, &views).collect();
        assert_eq!(all.len(), 3);
        // Odd task: only the two CPU PEs.
        let cpus: Vec<usize> = idle_compatible(&ready[1].task, &views).collect();
        assert_eq!(cpus.len(), 2);
        // Busy PEs are excluded.
        views[0].idle = false;
        let fewer: Vec<usize> = idle_compatible(&ready[0].task, &views).collect();
        assert_eq!(fewer.len(), 2);
    }
}
