//! First Ready-First Start: the paper's lightweight default policy.
//!
//! Strict FIFO: the task that became ready first starts first — no task
//! overtakes the queue head. Each head task takes the first idle
//! compatible PE; dispatch stops at the first head that cannot be
//! placed. Per the paper, "the complexity of FRFS is equal to the
//! number of PEs in the emulated SoC" — the policy looks at one queue
//! position per placed task and never walks the rest of the queue,
//! which is why its scheduling overhead stays flat in Fig. 10b while
//! MET's and EFT's grow with the ready-queue length.

use crate::sched::{idle_compatible, Assignment, PeView, SchedContext, Scheduler};
use crate::task::ReadyTask;

/// First Ready-First Start scheduler.
#[derive(Debug, Default, Clone)]
pub struct FrfsScheduler {
    /// Reused per-invocation "PE already taken this round" scratch, so
    /// the policy itself allocates nothing in the steady state.
    taken: Vec<bool>,
}

impl FrfsScheduler {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FrfsScheduler {
    fn name(&self) -> &'static str {
        "FRFS"
    }

    // `schedule_into` below implements exactly this contract and the
    // policy is stateless across invocations, so engines may take their
    // dense path. The DES differential suites (cross-engine, trace,
    // metrics) pin the equivalence.
    fn dense_fifo(&self) -> bool {
        true
    }

    fn uses_estimates(&self) -> bool {
        false
    }

    fn schedule(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        ctx: &SchedContext<'_>,
    ) -> Vec<Assignment> {
        let mut out = Vec::with_capacity(pes.len().min(ready.len()));
        self.schedule_into(ready, pes, ctx, &mut out);
        out
    }

    // The default policy sits on the DES per-event path, so it takes the
    // allocation-free entry point; `schedule` above is the thin wrapper.
    fn schedule_into(
        &mut self,
        ready: &[ReadyTask],
        pes: &[PeView<'_>],
        _ctx: &SchedContext<'_>,
        out: &mut Vec<Assignment>,
    ) {
        self.taken.clear();
        self.taken.resize(pes.len(), false);
        // The engine guarantees readiness (seq) order: the head of the
        // slice is the first-ready task. Strict FIFO — stop at the first
        // task that cannot start (nothing overtakes it).
        for (i, rt) in ready.iter().enumerate() {
            match idle_compatible(&rt.task, pes).find(|&p| !self.taken[p]) {
                Some(slot) => {
                    self.taken[slot] = true;
                    out.push(Assignment { ready_idx: i, pe: pes[slot].pe.id });
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::*;
    use crate::sched::EstimateBook;
    use crate::time::SimTime;

    fn ctx(book: &EstimateBook) -> SchedContext<'_> {
        SchedContext { now: SimTime::ZERO, estimates: book }
    }

    #[test]
    fn assigns_in_ready_order_to_first_idle() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        let ready = ready_tasks(4, 70.0);
        let book = EstimateBook::new();
        let mut s = FrfsScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_contract(&ready, &views, &out);
        // Three PEs, four tasks: exactly three assignments.
        assert_eq!(out.len(), 3);
        // Task 0 (earliest seq) gets the first PE in descriptor order.
        assert_eq!(out[0].ready_idx, 0);
        assert_eq!(out[0].pe, cfg.pes[0].id);
        // Task 1 only supports cpu -> second core.
        assert_eq!(out[1].ready_idx, 1);
        assert_eq!(out[1].pe, cfg.pes[1].id);
        // Task 2 supports fft -> the accelerator.
        assert_eq!(out[2].ready_idx, 2);
        assert_eq!(out[2].pe, cfg.pes[2].id);
    }

    #[test]
    fn head_takes_the_only_idle_pe() {
        let cfg = platform_2c1f();
        let mut views = idle_views(&cfg);
        views[0].idle = false;
        views[1].idle = false; // only the FFT PE is idle
        let ready = ready_tasks(2, 70.0);
        let book = EstimateBook::new();
        let mut s = FrfsScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_contract(&ready, &views, &out);
        // Head task supports fft and takes it; task 1 (cpu-only) waits.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ready_idx, 0);
    }

    #[test]
    fn strict_fifo_blocks_behind_unplaceable_head() {
        let cfg = platform_2c1f();
        let mut views = idle_views(&cfg);
        views[0].idle = false;
        views[1].idle = false; // only the FFT PE is idle
                               // Head task (index 1 is odd = cpu-only after the swap trick):
                               // build 2 tasks and drop the fft-capable head so the head is
                               // cpu-only while an fft-capable task waits behind it.
        let ready = ready_tasks(4, 70.0);
        let tail = &ready[1..]; // head now cpu-only (odd index), task 2 is fft-capable
        let book = EstimateBook::new();
        let mut s = FrfsScheduler::new();
        let out = s.schedule(tail, &views, &ctx(&book));
        // Nothing dispatched: first-ready-first-start means the
        // fft-capable task may not overtake the blocked head.
        assert!(out.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        let book = EstimateBook::new();
        let mut s = FrfsScheduler::new();
        assert!(s.schedule(&[], &views, &ctx(&book)).is_empty());
        let ready = ready_tasks(1, 70.0);
        assert!(s.schedule(&ready, &[], &ctx(&book)).is_empty());
    }

    #[test]
    fn stops_at_first_unplaceable_task() {
        let cfg = platform_2c1f();
        let views = idle_views(&cfg);
        // Far more ready tasks than PEs: FRFS dispatches a prefix (one
        // task per PE) and never examines the rest of the queue.
        let ready = ready_tasks(64, 70.0);
        let book = EstimateBook::new();
        let mut s = FrfsScheduler::new();
        let out = s.schedule(&ready, &views, &ctx(&book));
        assert_eq!(out.len(), 3);
        let idxs: Vec<usize> = out.iter().map(|a| a.ready_idx).collect();
        assert_eq!(idxs, vec![0, 1, 2], "a strict prefix is dispatched");
    }
}
