//! Resource-manager threads — one per PE (paper Fig. 4).
//!
//! Each thread blocks on its resource handler until the workload manager
//! assigns a task, executes it, and posts a completion:
//!
//! * **CPU PE** — the kernel executes directly on the thread; the modeled
//!   duration is the cost model's answer (by default the host-measured
//!   functional time scaled by the core's relative speed).
//! * **Accelerator PE** — the kernel stages data to the device through the
//!   thread's [`AccelPort`] (DDR→device DMA, compute, device→DDR DMA);
//!   the modeled duration comes from the device's latency reports. When
//!   the manager thread shares its host core with other manager threads
//!   (the paper's 2C+2F scenario), the DMA handling phases are stretched
//!   by the sharing factor and a context-switch penalty is charged per
//!   extra sharer — the preemption cycle the paper describes.
//!
//! In wall-clock timing mode the thread additionally *embodies* the model
//! on the host: it busy-waits the residual for slow cores and sleeps
//! while the "device" processes, exactly as the paper migrates
//! accelerator manager threads to the sleep state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dssoc_appmodel::error::ModelError;
use dssoc_appmodel::memory::{AccelPort, TaskCtx};
use dssoc_platform::accel::{AccelJobReport, FftAccelerator};
use dssoc_platform::cost::CostModel;
use dssoc_platform::pe::{ContentionModel, PeId, PeKind, PlatformConfig};
use dssoc_platform::placement::Placement;
use dssoc_trace::{DmaPhase, EventKind as TraceKind, TraceSink};

use crate::engine::{EmuError, TimingMode};
use crate::handler::{PeStatus, ResourceHandler, TaskCompletion};

/// [`AccelPort`] implementation backed by the simulated FFT device.
pub struct FftPort {
    device: FftAccelerator,
}

impl FftPort {
    /// Wraps a device.
    pub fn new(device: FftAccelerator) -> Self {
        FftPort { device }
    }
}

impl AccelPort for FftPort {
    fn kind(&self) -> &str {
        "fft"
    }

    fn fft_bytes(&self, buf: &mut [u8], inverse: bool) -> Result<AccelJobReport, String> {
        self.device.process_bytes(buf, inverse).map_err(|e| e.to_string())
    }
}

/// Lifetime count of resource-manager threads spawned in this process.
/// Tests use it to assert that [`ResourcePool`] reuses its threads
/// across consecutive runs instead of respawning per run.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total resource-manager threads ever spawned by this process.
pub fn threads_spawned_total() -> u64 {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// The persistent PE resource pool: one resource handler and one named
/// manager thread per PE, spawned once and reused across emulation runs.
///
/// The paper's initialization phase brings this pool up before the
/// workload manager starts; keeping it alive between runs means a batch
/// sweep pays thread-spawn cost once, not per cell. Threads park in
/// [`ResourceHandler::wait_for_assignment`] between runs and are shut
/// down and joined on [`Drop`].
pub struct ResourcePool {
    handlers: Vec<Arc<ResourceHandler>>,
    threads: Vec<JoinHandle<()>>,
}

impl ResourcePool {
    /// Spawns one handler + manager thread per PE of `platform`.
    pub fn spawn(
        platform: &PlatformConfig,
        cost: &Arc<dyn CostModel>,
        timing: TimingMode,
    ) -> Result<Self, EmuError> {
        let placement = Placement::compute(platform);
        let handlers: Vec<Arc<ResourceHandler>> =
            platform.pes.iter().map(|pe| ResourceHandler::new(pe.clone())).collect();
        let mut threads = Vec::with_capacity(handlers.len());
        for h in &handlers {
            let ctx = RmContext {
                handler: Arc::clone(h),
                cost: Arc::clone(cost),
                timing,
                sharers: placement.sharers_of(h.pe_id()),
                contention: platform.contention.clone(),
            };
            let name = format!("rm-{}", h.pe.name);
            threads.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || resource_manager_loop(ctx))
                    .map_err(|e| {
                        EmuError::Config(format!("failed to spawn manager thread: {e}"))
                    })?,
            );
            THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ResourcePool { handlers, threads })
    }

    /// The per-PE handlers, in platform PE order.
    pub fn handlers(&self) -> &[Arc<ResourceHandler>] {
        &self.handlers
    }

    /// Installs one trace producer per PE (named `rm-{pe}`): the manager
    /// threads record pool park/unpark transitions and accelerator DMA
    /// phases into `sink`'s session until [`Self::detach_trace`].
    pub fn attach_trace(&self, sink: &TraceSink) {
        for h in &self.handlers {
            h.set_trace(Some(sink.writer(&format!("rm-{}", h.pe.name))));
        }
    }

    /// Removes the per-PE trace producers installed by
    /// [`Self::attach_trace`].
    pub fn detach_trace(&self) {
        for h in &self.handlers {
            h.set_trace(None);
        }
    }

    /// Waits until every PE is idle again, discarding any uncollected
    /// completions. Called after a run ends early (scheduler contract
    /// violation, task failure) so in-flight work cannot leak into the
    /// next run on this pool.
    pub fn drain(&self) {
        self.drain_except(&std::collections::HashSet::new());
    }

    /// [`Self::drain`], skipping PEs whose manager thread is known
    /// wedged (a fault watchdog fired on them): waiting on those would
    /// block forever, and their eventual stale completions are
    /// discarded by the next run instead.
    pub fn drain_except(&self, skip: &std::collections::HashSet<PeId>) {
        for h in &self.handlers {
            if skip.contains(&h.pe_id()) {
                continue;
            }
            while h.status() != PeStatus::Idle {
                let _ = h.try_collect();
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for ResourcePool {
    fn drop(&mut self) {
        for h in &self.handlers {
            h.shutdown();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Immutable context shared by one resource-manager thread.
pub struct RmContext {
    /// The handler connecting this thread to the workload manager.
    pub handler: Arc<ResourceHandler>,
    /// Cost model for CPU task durations.
    pub cost: Arc<dyn CostModel>,
    /// Timing mode (whether to embody modeled durations in wall time).
    pub timing: TimingMode,
    /// How many manager threads share this thread's host core (1 =
    /// dedicated).
    pub sharers: usize,
    /// Context-switch penalty model for shared host cores.
    pub contention: ContentionModel,
}

/// Computes the modeled duration of a completed task.
///
/// Accelerator invocations take precedence: their latency model is
/// authoritative. The host-core sharing factor stretches the DMA phases
/// (the manager thread must be scheduled on its core to drive each
/// transfer) and adds `context_switch * (sharers - 1)` per invocation.
pub fn modeled_duration(
    ctx: &RmContext,
    runfunc: &str,
    measured: Duration,
    reports: &[AccelJobReport],
) -> Duration {
    let pe = &ctx.handler.pe;
    if !reports.is_empty() {
        let k = ctx.sharers.max(1) as u32;
        let mut total = Duration::ZERO;
        for r in reports {
            total += (r.dma_in + r.dma_out) * k + r.compute;
            total += ctx.contention.context_switch * (k - 1);
        }
        return total;
    }
    match &pe.kind {
        PeKind::Cpu(_) => ctx
            .cost
            .task_duration(runfunc, pe, measured)
            .unwrap_or_else(|| Duration::from_secs_f64(measured.as_secs_f64() / pe.speed())),
        // An accelerator PE whose kernel never touched the device: treat
        // the host execution like a speed-1 core (the manager thread did
        // the work itself).
        PeKind::Accel(_) => ctx.cost.task_duration(runfunc, pe, measured).unwrap_or(measured),
    }
}

/// Spins until `total` wall time has elapsed since `t0` (models a slower
/// core actually occupying its host slot).
fn busy_wait_until(t0: Instant, total: Duration) {
    while t0.elapsed() < total {
        std::hint::spin_loop();
    }
}

/// The resource-manager thread body. Returns when the workload manager
/// shuts the handler down.
pub fn resource_manager_loop(ctx: RmContext) {
    // Per-runfunc running averages for outlier clamping.
    let mut kernel_ewma: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    // Accelerator PEs own their device for the lifetime of the thread.
    let port: Option<FftPort> = match &ctx.handler.pe.kind {
        PeKind::Accel(model) if model.kind == "fft" => {
            Some(FftPort::new(FftAccelerator::new(model.clone())))
        }
        _ => None,
    };

    while let Some(assignment) = ctx.handler.wait_for_assignment() {
        let task = assignment.task;
        let node = task.node().clone();
        let platform = node.platform(&ctx.handler.pe.platform_key);

        let t0 = Instant::now();
        let (result, reports, runfunc) = match platform {
            Some(p) => {
                let task_ctx = TaskCtx::new(
                    &task.instance.memory,
                    &node.name,
                    &node.arguments,
                    port.as_ref().map(|p| p as &dyn AccelPort),
                );
                let r = p.kernel.run(&task_ctx);
                let reports = task_ctx.take_accel_reports();
                (r, reports, p.runfunc.clone())
            }
            None => (
                Err(ModelError::KernelFailed {
                    kernel: node.name.clone(),
                    reason: format!(
                        "scheduled on incompatible PE '{}' (platform key '{}')",
                        ctx.handler.pe.name, ctx.handler.pe.platform_key
                    ),
                }),
                Vec::new(),
                String::new(),
            ),
        };
        // On an oversubscribed host a concurrent PE thread can preempt
        // this one mid-kernel, inflating the wall measurement; clamp
        // outliers against this kernel's running average (each paper PE
        // has a dedicated core, so its measurements are preemption-free).
        let raw_measured = t0.elapsed();
        let measured = match kernel_ewma.get_mut(&runfunc) {
            Some(avg) => {
                let clamped = raw_measured.as_secs_f64().min(*avg * 3.0);
                *avg = 0.8 * *avg + 0.2 * clamped;
                Duration::from_secs_f64(clamped)
            }
            None => {
                kernel_ewma.insert(runfunc.clone(), raw_measured.as_secs_f64());
                raw_measured
            }
        };
        let modeled = modeled_duration(&ctx, &runfunc, measured, &reports);

        if ctx.timing == TimingMode::WallClock {
            // Embody the model in real time, as the paper's testbed does.
            match &ctx.handler.pe.kind {
                PeKind::Cpu(_) => busy_wait_until(t0, modeled),
                PeKind::Accel(_) => {
                    // The device "processes" while the manager sleeps.
                    let residual = modeled.saturating_sub(measured);
                    if !residual.is_zero() {
                        std::thread::sleep(residual);
                    }
                }
            }
        }

        // Record this invocation's pool and DMA lifecycle (modeled
        // timeline: the thread "unparked" at the assigned start and
        // "parks" again once the modeled duration has elapsed, with the
        // accelerator's DMA/compute phases laid out in between, DMA
        // stretched by the host-core sharing factor exactly as
        // [`modeled_duration`] charges it).
        ctx.handler.with_trace(|w| {
            let pe = ctx.handler.pe_id().0;
            let k = ctx.sharers.max(1) as u32;
            w.emit(assignment.start.0, TraceKind::PoolUnpark { pe });
            // CPU tasks have no DMA phases — only accelerators get the
            // in/compute/out breakdown (zero-width phases would clutter
            // the exported DMA tracks).
            if matches!(ctx.handler.pe.kind, PeKind::Accel(_)) {
                let mut t = assignment.start;
                for r in &reports {
                    for (phase, dur) in [
                        (DmaPhase::In, r.dma_in * k),
                        (DmaPhase::Compute, r.compute),
                        (DmaPhase::Out, r.dma_out * k),
                    ] {
                        let end = t + dur;
                        w.emit(end.0, TraceKind::Dma { pe, phase, start_ns: t.0, end_ns: end.0 });
                        t = end;
                    }
                    t += ctx.contention.context_switch * (k - 1);
                }
            }
            let parked = assignment.start + modeled;
            w.emit(parked.0, TraceKind::PoolPark { pe });
        });

        ctx.handler.post_completion(TaskCompletion {
            task,
            start: assignment.start,
            modeled,
            measured,
            accel_reports: reports,
            result,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssoc_platform::cost::ScaledMeasuredCost;
    use dssoc_platform::presets::{zcu102, zcu102_fft_accel, A53_SPEED};

    fn rm_ctx(cores: usize, ffts: usize, pe_idx: usize, sharers: usize) -> RmContext {
        let cfg = zcu102(cores, ffts);
        RmContext {
            handler: ResourceHandler::new(cfg.pes[pe_idx].clone()),
            cost: Arc::new(ScaledMeasuredCost::default()),
            timing: TimingMode::Modeled,
            sharers,
            contention: ContentionModel::default(),
        }
    }

    #[test]
    fn cpu_duration_scales_by_speed() {
        let ctx = rm_ctx(1, 0, 0, 1);
        let d = modeled_duration(&ctx, "k", Duration::from_millis(1), &[]);
        let expect = Duration::from_secs_f64(1e-3 / A53_SPEED);
        assert!((d.as_secs_f64() - expect.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn accel_duration_comes_from_reports() {
        let ctx = rm_ctx(1, 1, 1, 1);
        let report = AccelJobReport {
            dma_in: Duration::from_micros(30),
            compute: Duration::from_micros(5),
            dma_out: Duration::from_micros(30),
        };
        // Host-measured time is irrelevant for accelerator tasks.
        let d = modeled_duration(&ctx, "k", Duration::from_secs(1), &[report]);
        assert_eq!(d, Duration::from_micros(65));
    }

    #[test]
    fn shared_slot_stretches_dma_and_adds_switches() {
        let mut ctx = rm_ctx(2, 2, 2, 2); // accel sharing with one other manager
        ctx.contention = ContentionModel { context_switch: Duration::from_micros(10) };
        let report = AccelJobReport {
            dma_in: Duration::from_micros(30),
            compute: Duration::from_micros(5),
            dma_out: Duration::from_micros(30),
        };
        let d = modeled_duration(&ctx, "k", Duration::ZERO, &[report]);
        // (30+30)*2 + 5 + 10 = 135 us
        assert_eq!(d, Duration::from_micros(135));
    }

    #[test]
    fn multiple_reports_accumulate() {
        let ctx = rm_ctx(1, 1, 1, 1);
        let r = AccelJobReport {
            dma_in: Duration::from_micros(10),
            compute: Duration::from_micros(10),
            dma_out: Duration::from_micros(10),
        };
        let d = modeled_duration(&ctx, "k", Duration::ZERO, &[r, r]);
        assert_eq!(d, Duration::from_micros(60));
    }

    #[test]
    fn fft_port_round_trip() {
        let port = FftPort::new(FftAccelerator::new(zcu102_fft_accel()));
        assert_eq!(port.kind(), "fft");
        // 4 complex samples = 32 bytes
        let mut buf = vec![0u8; 32];
        buf[0..4].copy_from_slice(&1.0f32.to_le_bytes()); // impulse
        let report = port.fft_bytes(&mut buf, false).unwrap();
        assert!(report.total() > Duration::ZERO);
        // FFT of impulse = all-ones
        for i in 0..4 {
            let re = f32::from_le_bytes(buf[i * 8..i * 8 + 4].try_into().unwrap());
            assert!((re - 1.0).abs() < 1e-5);
        }
        // Misaligned buffer errors pass through as strings.
        let mut bad = vec![0u8; 5];
        assert!(port.fft_bytes(&mut bad, false).is_err());
    }
}
