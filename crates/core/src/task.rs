//! Tasks: DAG nodes of injected application instances.
//!
//! "Each task consists of a DAG node data structure with all the
//! information necessary for scheduling, dispatch, and measurement of a
//! single node's performance throughout the framework." (paper §II-C)

use std::sync::Arc;

use dssoc_appmodel::app::NodeSpec;
use dssoc_appmodel::instance::{AppInstance, InstanceId};

use crate::time::SimTime;

/// One schedulable task: a node of a specific application instance.
#[derive(Clone)]
pub struct Task {
    /// The application instance this task belongs to.
    pub instance: Arc<AppInstance>,
    /// Index of the node within the instance's spec.
    pub node_idx: usize,
}

impl Task {
    /// The node specification (arguments, platforms, topology).
    pub fn node(&self) -> &NodeSpec {
        &self.instance.spec.nodes[self.node_idx]
    }

    /// The owning application's name.
    pub fn app_name(&self) -> &str {
        &self.instance.spec.name
    }

    /// `(instance, node)` key uniquely identifying the task in a
    /// workload.
    pub fn key(&self) -> (InstanceId, usize) {
        (self.instance.id, self.node_idx)
    }

    /// True if the task can execute on a PE exposing `platform_key`.
    pub fn supports(&self, platform_key: &str) -> bool {
        self.node().supports(platform_key)
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Task({}/{}:{})", self.instance.id, self.app_name(), self.node().name)
    }
}

/// A task waiting in the ready list, with its provenance for ordering.
#[derive(Debug, Clone)]
pub struct ReadyTask {
    /// The task itself.
    pub task: Task,
    /// When all its predecessors completed (emulation time).
    pub ready_at: SimTime,
    /// Monotone sequence number assigned as tasks become ready — FRFS
    /// dispatches in this order.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssoc_appmodel::app::ApplicationSpec;
    use dssoc_appmodel::json::{AppJson, NodeJson, PlatformJson};
    use dssoc_appmodel::registry::KernelRegistry;
    use std::collections::BTreeMap;
    use std::time::Duration;

    fn chain_spec() -> Arc<ApplicationSpec> {
        let mut reg = KernelRegistry::new();
        reg.register_fn("c.so", "k1", |_| Ok(()));
        reg.register_fn("c.so", "k2", |_| Ok(()));
        reg.register_fn("accel.so", "k2a", |_| Ok(()));
        let mut dag = BTreeMap::new();
        dag.insert(
            "first".to_string(),
            NodeJson {
                arguments: vec![],
                predecessors: vec![],
                successors: vec!["second".into()],
                platforms: vec![PlatformJson {
                    name: "cpu".into(),
                    runfunc: "k1".into(),
                    shared_object: None,
                    mean_exec_us: None,
                }],
            },
        );
        dag.insert(
            "second".to_string(),
            NodeJson {
                arguments: vec![],
                predecessors: vec!["first".into()],
                successors: vec![],
                platforms: vec![
                    PlatformJson {
                        name: "cpu".into(),
                        runfunc: "k2".into(),
                        shared_object: None,
                        mean_exec_us: None,
                    },
                    PlatformJson {
                        name: "fft".into(),
                        runfunc: "k2a".into(),
                        shared_object: Some("accel.so".into()),
                        mean_exec_us: None,
                    },
                ],
            },
        );
        let json = AppJson {
            app_name: "chain".into(),
            shared_object: "c.so".into(),
            variables: BTreeMap::new(),
            dag,
        };
        ApplicationSpec::from_json(&json, &reg).unwrap()
    }

    #[test]
    fn task_accessors() {
        let spec = chain_spec();
        let inst = Arc::new(
            AppInstance::instantiate(spec, InstanceId(3), Duration::from_millis(1)).unwrap(),
        );
        let first_idx = inst.spec.node_by_name("first").unwrap().index;
        let second_idx = inst.spec.node_by_name("second").unwrap().index;

        let t1 = Task { instance: Arc::clone(&inst), node_idx: first_idx };
        assert_eq!(t1.app_name(), "chain");
        assert_eq!(t1.node().name, "first");
        assert_eq!(t1.key(), (InstanceId(3), first_idx));
        assert!(t1.supports("cpu"));
        assert!(!t1.supports("fft"));

        let t2 = Task { instance: inst, node_idx: second_idx };
        assert!(t2.supports("cpu"));
        assert!(t2.supports("fft"));
        assert!(format!("{t2:?}").contains("second"));
    }
}
