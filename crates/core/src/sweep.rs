//! Batch sweep API: run a grid of (platform, scheduler, workload) cells
//! with per-cell iteration counts against warm, reusable emulation
//! pools.
//!
//! Every case study in the paper's evaluation (§III) is a sweep of this
//! shape — Fig. 9 sweeps platform configurations, Fig. 10 sweeps
//! schedulers × injection rates, Fig. 11 sweeps big.LITTLE mixes — and
//! each used to hand-roll the same harness loop. [`SweepRunner`] owns
//! that loop once. Cells are lowered to [`ScenarioSpec`]s and executed
//! through a [`JobRunner`]: each distinct scenario fingerprint is
//! compiled exactly once (name tables, cost grids, fault plans), warm
//! engines are shared per engine fingerprint so consecutive cells reuse
//! the persistent PE resource pool instead of respawning threads, and
//! deterministic repeats replay from the runner's [`ResultCache`].
//!
//! [`DesSweepRunner`] is the same grid API over the discrete-event
//! baseline — the design-space-exploration configuration, where grids
//! get large and per-cell cost is pure compute.
//!
//! Both runners offer [`SweepRunner::run_batch_parallel`]: the grid is
//! distributed over a small pool of worker threads. Scenarios are
//! compiled once on the calling thread and shared by `Arc` — workers
//! share one [`CompiledScenario`] per distinct fingerprint and one
//! [`ResultCache`], but own their warm engine pools. Cells are
//! independent (each run starts from fresh instances), so results are
//! identical to the sequential [`SweepRunner::run_batch`] whenever the
//! underlying engine runs are deterministic, and they come back in cell
//! order either way.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::workload::Workload;
use dssoc_platform::pe::PlatformConfig;
use dssoc_trace::TraceSink;

use crate::des::DesConfig;
use crate::engine::{EmuError, EmulationConfig, OverheadMode, TimingMode};
use crate::fault::FaultSpec;
use crate::job::{CompiledScenario, Engine, Fingerprint, JobRunner, ResultCache, ScenarioSpec};
use crate::sched::{by_name, Scheduler};
use crate::stats::EmulationStats;

/// One cell of a sweep grid: a platform, a scheduler, a workload, and
/// how often to repeat the run.
#[derive(Clone)]
pub struct SweepCell {
    /// Display label carried into the [`CellResult`].
    pub label: String,
    /// Platform to emulate (shared, so grids can reuse one config
    /// across cells without deep-cloning its PE descriptors).
    pub platform: Arc<PlatformConfig>,
    /// Library scheduler name (resolved via [`by_name`]).
    pub scheduler: String,
    /// Workload to run (shared, so grids can reuse one workload across
    /// platforms without cloning it per cell).
    pub workload: Arc<Workload>,
    /// Number of measured iterations (at least 1).
    pub iterations: usize,
    /// Whether to prepend one discarded warm-up run.
    pub warmup: bool,
    /// Fault-injection spec applied to every run of this cell (the
    /// engine compiles it against the cell's platform). `None` runs
    /// fault-free.
    pub faults: Option<Arc<FaultSpec>>,
}

impl SweepCell {
    /// A single-iteration cell without warm-up, labeled
    /// `"{platform}/{scheduler}"`.
    pub fn new(
        platform: impl Into<Arc<PlatformConfig>>,
        scheduler: impl Into<String>,
        workload: Arc<Workload>,
    ) -> Self {
        let platform = platform.into();
        let scheduler = scheduler.into();
        SweepCell {
            label: format!("{}/{}", platform.name, scheduler),
            platform,
            scheduler,
            workload,
            iterations: 1,
            warmup: false,
            faults: None,
        }
    }

    /// Replaces the display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the measured iteration count (clamped to at least 1).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n.max(1);
        self
    }

    /// Enables or disables the discarded warm-up run.
    pub fn warmup(mut self, warmup: bool) -> Self {
        self.warmup = warmup;
        self
    }

    /// Attaches a fault-injection spec to every run of this cell.
    pub fn faults(mut self, spec: Arc<FaultSpec>) -> Self {
        self.faults = Some(spec);
        self
    }
}

/// Shared live progress of a sweep batch: how many cells are done,
/// running, and failed, plus an ETA extrapolated from completed-cell
/// wall times. Clone the handle before handing a runner the original;
/// any thread can [`Self::snapshot`] it while the batch runs (the
/// renderer thread of [`Self::watch_stderr`] does exactly that).
#[derive(Clone)]
pub struct SweepProgress {
    inner: Arc<ProgressInner>,
}

struct ProgressInner {
    total: AtomicUsize,
    done: AtomicUsize,
    running: AtomicUsize,
    failed: AtomicUsize,
    /// Sum of completed-cell wall times, nanoseconds.
    completed_ns: AtomicU64,
    workers: AtomicUsize,
    started: Instant,
}

impl Default for SweepProgress {
    fn default() -> Self {
        SweepProgress::new()
    }
}

impl SweepProgress {
    pub fn new() -> Self {
        SweepProgress {
            inner: Arc::new(ProgressInner {
                total: AtomicUsize::new(0),
                done: AtomicUsize::new(0),
                running: AtomicUsize::new(0),
                failed: AtomicUsize::new(0),
                completed_ns: AtomicU64::new(0),
                workers: AtomicUsize::new(1),
                started: Instant::now(),
            }),
        }
    }

    fn begin_batch(&self, cells: usize, workers: usize) {
        self.inner.total.fetch_add(cells, Ordering::Relaxed);
        self.inner.workers.store(workers.max(1), Ordering::Relaxed);
    }

    fn cell_started(&self) {
        self.inner.running.fetch_add(1, Ordering::Relaxed);
    }

    fn cell_finished(&self, elapsed: Duration, ok: bool) {
        self.inner.running.fetch_sub(1, Ordering::Relaxed);
        self.inner.completed_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if ok {
            self.inner.done.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time view of the batch.
    pub fn snapshot(&self) -> SweepProgressSnapshot {
        let i = &self.inner;
        let total = i.total.load(Ordering::Relaxed);
        let done = i.done.load(Ordering::Relaxed);
        let failed = i.failed.load(Ordering::Relaxed);
        let running = i.running.load(Ordering::Relaxed);
        let completed = done + failed;
        let workers = i.workers.load(Ordering::Relaxed).max(1);
        let eta = if completed > 0 && total > completed {
            let mean_ns = i.completed_ns.load(Ordering::Relaxed) as f64 / completed as f64;
            let remaining = (total - completed) as f64;
            Some(Duration::from_secs_f64(mean_ns * 1e-9 * remaining / workers as f64))
        } else {
            None
        };
        SweepProgressSnapshot { total, done, running, failed, elapsed: i.started.elapsed(), eta }
    }

    /// Spawns a thread that redraws a one-line progress display on
    /// stderr every `interval` until the returned guard is dropped (a
    /// final newline-terminated line is printed on drop).
    pub fn watch_stderr(&self, interval: Duration) -> ProgressWatcher {
        let progress = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("sweep-progress".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    eprint!("\r{}", progress.snapshot().render());
                    let _ = std::io::stderr().flush();
                    std::thread::sleep(interval);
                }
                eprintln!("\r{}", progress.snapshot().render());
            })
            .expect("spawn progress watcher");
        ProgressWatcher { stop, handle: Some(handle) }
    }
}

/// Stops the [`SweepProgress::watch_stderr`] thread when dropped.
pub struct ProgressWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ProgressWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One observation of a batch's progress.
#[derive(Clone, Debug)]
pub struct SweepProgressSnapshot {
    /// Cells in the batch (grows if batches share one progress handle).
    pub total: usize,
    /// Cells completed successfully.
    pub done: usize,
    /// Cells currently running.
    pub running: usize,
    /// Cells that returned an error.
    pub failed: usize,
    /// Wall time since the progress handle was created.
    pub elapsed: Duration,
    /// Estimated time to finish the remaining cells, extrapolated from
    /// the mean completed-cell time over the worker count. `None` until
    /// the first cell completes.
    pub eta: Option<Duration>,
}

impl SweepProgressSnapshot {
    /// The one-line display the stderr watcher prints.
    pub fn render(&self) -> String {
        let mut line =
            format!("sweep: {}/{} cells done, {} running", self.done, self.total, self.running);
        if self.failed > 0 {
            line.push_str(&format!(", {} failed", self.failed));
        }
        line.push_str(&format!(", {:.1}s elapsed", self.elapsed.as_secs_f64()));
        match self.eta {
            Some(eta) => line.push_str(&format!(", eta {:.1}s", eta.as_secs_f64())),
            None => line.push_str(", eta --"),
        }
        line
    }
}

/// The outcome of one sweep cell.
#[derive(Debug)]
pub struct CellResult {
    /// The cell's label.
    pub label: String,
    /// Makespan of each measured iteration, in milliseconds.
    pub makespans_ms: Vec<f64>,
    /// Full statistics of the last measured iteration.
    pub stats: EmulationStats,
}

/// A sensible worker count for [`SweepRunner::run_batch_parallel`]: the
/// host's available parallelism, or 1 when it cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Resolves a cell's scheduler name once, returning a factory that
/// yields a fresh policy per iteration. The eagerly resolved instance
/// is handed out first, so single-iteration cells (the common grid
/// case) resolve exactly once.
fn scheduler_factory<'c>(
    scheduler: &'c str,
) -> Result<impl FnMut() -> Box<dyn Scheduler> + 'c, EmuError> {
    let mut first = Some(
        by_name(scheduler)
            .ok_or_else(|| EmuError::Config(format!("unknown scheduler '{scheduler}'")))?,
    );
    Ok(move || first.take().unwrap_or_else(|| by_name(scheduler).expect("resolved above")))
}

/// Work-stealing fan-out shared by both runners: `workers` threads pull
/// cells off a shared index, each running them through its own
/// `make_worker()` closure (one warm engine pool per worker). Results
/// come back ordered by cell index; on error the batch stops early and
/// the error of the lowest-indexed failing cell is returned — the same
/// cell a sequential run would have failed on first.
fn run_cells_parallel<W, F>(
    cells: &[SweepCell],
    workers: usize,
    progress: Option<&SweepProgress>,
    make_worker: F,
) -> Result<Vec<CellResult>, EmuError>
where
    F: Fn() -> W + Sync,
    W: FnMut(usize, &SweepCell) -> Result<CellResult, EmuError>,
{
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<CellResult, EmuError>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    if let Some(p) = progress {
        p.begin_batch(cells.len(), workers);
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut run = make_worker();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell_start = Instant::now();
                    if let Some(p) = progress {
                        p.cell_started();
                    }
                    let result = run(i, &cells[i]);
                    if let Some(p) = progress {
                        p.cell_finished(cell_start.elapsed(), result.is_ok());
                    }
                    if result.is_err() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("result slot") = Some(result);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(cells.len());
    for slot in slots {
        match slot.into_inner().expect("result slot") {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Unclaimed cell: only possible after an error stopped the
            // batch; the failing cell sits at a higher index.
            None => break,
        }
    }
    // An error at a higher index than every completed cell: find it.
    if out.len() < cells.len() {
        return Err(EmuError::Config(format!(
            "parallel sweep stopped after {} of {} cells",
            out.len(),
            cells.len()
        )));
    }
    Ok(out)
}

/// Memoized compile: one [`CompiledScenario`] per distinct content
/// fingerprint. The `custom` flag separates custom-scheduler
/// compilations (which skip the scheduler-name check and are never
/// served from the result cache) from library-scheduler ones.
fn scenario_for(
    scenarios: &mut HashMap<(Fingerprint, bool), Arc<CompiledScenario>>,
    spec: ScenarioSpec,
    custom: bool,
) -> Result<Arc<CompiledScenario>, EmuError> {
    let key = (spec.fingerprint(), custom);
    if let Some(scenario) = scenarios.get(&key) {
        return Ok(Arc::clone(scenario));
    }
    let scenario = if custom {
        CompiledScenario::compile_custom(spec)?
    } else {
        CompiledScenario::compile(spec)?
    };
    scenarios.insert(key, Arc::clone(&scenario));
    Ok(scenario)
}

/// The per-cell iteration loop shared by both runners: warm-up runs are
/// discarded, the final measured iteration records into `traced` if the
/// cell is the designated trace target, and every run goes through the
/// [`JobRunner`] (so deterministic repeats replay from its cache).
fn run_cell_on(
    jobs: &mut JobRunner,
    engine: Engine,
    cell: &SweepCell,
    scenario: &Arc<CompiledScenario>,
    traced: Option<TraceSink>,
    make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
) -> Result<CellResult, EmuError> {
    let warmup = usize::from(cell.warmup);
    let total = cell.iterations + warmup;
    let mut makespans = Vec::with_capacity(cell.iterations);
    let mut last: Option<EmulationStats> = None;
    for i in 0..total {
        let mut sched = make_scheduler();
        // Trace only the final measured iteration, so the exported
        // timeline isn't a concatenation of repeats.
        let result = match &traced {
            Some(sink) if i + 1 == total => {
                jobs.run_traced(scenario, engine, sched.as_mut(), sink.clone())?
            }
            _ => jobs.run_with(scenario, engine, sched.as_mut())?,
        };
        if i >= warmup {
            makespans.push(result.stats.makespan.as_secs_f64() * 1e3);
            last = Some(result.stats);
        }
    }
    Ok(CellResult {
        label: cell.label.clone(),
        makespans_ms: makespans,
        stats: last.expect("at least one measured iteration"),
    })
}

/// Runs sweep cells through the scenario/job layer.
///
/// Each cell is lowered to a [`ScenarioSpec`] (the runner's engine
/// configuration plus the cell's platform/scheduler/workload/faults)
/// and compiled at most once per distinct fingerprint. The embedded
/// [`JobRunner`] keeps one warm [`Emulation`] per engine fingerprint —
/// cells on the same platform/config, and repeated iterations within a
/// cell, share its resource-manager threads — and replays deterministic
/// repeats from its [`ResultCache`].
pub struct SweepRunner<'a> {
    library: &'a AppLibrary,
    /// Arc'd view of the library, shared into every [`ScenarioSpec`]
    /// instead of deep-cloning app models per cell.
    apps: Arc<AppLibrary>,
    config: EmulationConfig,
    /// Job front door: warm engines plus the shared result cache.
    pub(crate) jobs: JobRunner,
    scenarios: HashMap<(Fingerprint, bool), Arc<CompiledScenario>>,
    /// `(cell label, sink)` of the one designated trace target, if any.
    trace: Option<(String, TraceSink)>,
    /// Live batch progress, shared with whoever installed it.
    progress: Option<SweepProgress>,
}

impl<'a> SweepRunner<'a> {
    /// A runner with the default engine configuration.
    pub fn new(library: &'a AppLibrary) -> Self {
        Self::with_config(library, EmulationConfig::default())
    }

    /// A runner with an explicit engine configuration, applied to every
    /// cell.
    pub fn with_config(library: &'a AppLibrary, config: EmulationConfig) -> Self {
        let mut jobs = JobRunner::new();
        jobs.set_metrics(config.metrics.clone());
        // A config-level sink records every run (and disables caching);
        // `trace_cell` stays the precise per-cell path.
        jobs.set_trace(config.trace.clone());
        SweepRunner {
            library,
            apps: Arc::new(library.clone()),
            config,
            jobs,
            scenarios: HashMap::new(),
            trace: None,
            progress: None,
        }
    }

    /// The application library the runner draws specs from.
    pub fn library(&self) -> &'a AppLibrary {
        self.library
    }

    /// The result cache shared by this runner's jobs (attach metrics or
    /// inspect hit counters through it).
    pub fn cache(&self) -> &ResultCache {
        self.jobs.cache()
    }

    /// Replaces the result cache (e.g. to share one cache across
    /// several runners).
    pub fn set_cache(&mut self, cache: ResultCache) {
        self.jobs.set_cache(cache);
    }

    /// Installs a shared [`SweepProgress`] handle: subsequent batch
    /// calls report per-cell starts/finishes into it. Clone the handle
    /// first to watch it (e.g. [`SweepProgress::watch_stderr`]).
    pub fn set_progress(&mut self, progress: SweepProgress) {
        self.progress = Some(progress);
    }

    /// The current batch progress, if a handle is installed.
    pub fn progress(&self) -> Option<SweepProgressSnapshot> {
        self.progress.as_ref().map(|p| p.snapshot())
    }

    /// Designates the cell labeled `label` for event tracing: its final
    /// measured iteration records into `sink`'s session. One cell, one
    /// iteration — a sweep's other cells and warm-up/earlier iterations
    /// stay untraced, so the trace doesn't distort the measured grid and
    /// the exported timeline isn't a concatenation of repeats.
    pub fn trace_cell(&mut self, label: impl Into<String>, sink: TraceSink) {
        self.trace = Some((label.into(), sink));
    }

    /// Lowers a cell to a scenario spec under this runner's engine
    /// configuration. Cell-level faults take precedence over a
    /// config-level spec.
    fn cell_spec(&self, cell: &SweepCell) -> ScenarioSpec {
        ScenarioSpec {
            library: Arc::clone(&self.apps),
            platform: Arc::clone(&cell.platform),
            scheduler: cell.scheduler.clone(),
            workload: Arc::clone(&cell.workload),
            timing: self.config.timing,
            overhead: self.config.overhead,
            cost: self.config.cost.clone(),
            reservation_depth: self.config.reservation_depth,
            faults: cell.faults.clone().or_else(|| self.config.faults.clone()),
        }
    }

    /// Runs one cell with its named library scheduler (a fresh policy
    /// instance per iteration; the name is resolved once).
    pub fn run_cell(&mut self, cell: &SweepCell) -> Result<CellResult, EmuError> {
        let mut factory = scheduler_factory(&cell.scheduler)?;
        self.run_cell_inner(cell, false, &mut factory)
    }

    /// Runs one cell with a custom scheduler factory (called once per
    /// iteration, so stateful policies start fresh each time). The
    /// cell's scheduler name is a display label here, not resolved
    /// against the library, and results are never served from cache.
    pub fn run_cell_with(
        &mut self,
        cell: &SweepCell,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<CellResult, EmuError> {
        self.run_cell_inner(cell, true, make_scheduler)
    }

    fn run_cell_inner(
        &mut self,
        cell: &SweepCell,
        custom: bool,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<CellResult, EmuError> {
        let spec = self.cell_spec(cell);
        let scenario = scenario_for(&mut self.scenarios, spec, custom)?;
        let traced =
            self.trace.as_ref().filter(|(label, _)| *label == cell.label).map(|(_, s)| s.clone());
        run_cell_on(&mut self.jobs, Engine::Threaded, cell, &scenario, traced, make_scheduler)
    }

    /// Runs every cell of a grid in order, stopping at the first error.
    pub fn run_batch(&mut self, cells: &[SweepCell]) -> Result<Vec<CellResult>, EmuError> {
        if let Some(p) = self.progress.clone() {
            p.begin_batch(cells.len(), 1);
            return cells
                .iter()
                .map(|c| {
                    let start = Instant::now();
                    p.cell_started();
                    let result = self.run_cell(c);
                    p.cell_finished(start.elapsed(), result.is_ok());
                    result
                })
                .collect();
        }
        cells.iter().map(|c| self.run_cell(c)).collect()
    }

    /// Runs a grid across `workers` threads (see [`default_workers`]),
    /// returning results in cell order.
    ///
    /// Every distinct scenario is compiled once on the calling thread;
    /// workers share the compiled artifacts and this runner's
    /// [`ResultCache`] by `Arc`, but own their warm engine pools (never
    /// contended across workers). With one worker — or a single cell —
    /// this is exactly [`Self::run_batch`] on `self`, reusing its
    /// engines.
    pub fn run_batch_parallel(
        &mut self,
        cells: &[SweepCell],
        workers: usize,
    ) -> Result<Vec<CellResult>, EmuError> {
        let workers = workers.clamp(1, cells.len().max(1));
        if workers <= 1 {
            return self.run_batch(cells);
        }
        let mut compiled = Vec::with_capacity(cells.len());
        for cell in cells {
            let spec = self.cell_spec(cell);
            compiled.push(scenario_for(&mut self.scenarios, spec, false)?);
        }
        let compiled = &compiled;
        let trace = &self.trace;
        let cache = self.jobs.cache().clone();
        let metrics = self.config.metrics.clone();
        let persistent = self.config.trace.clone();
        run_cells_parallel(cells, workers, self.progress.as_ref(), || {
            let mut jobs = JobRunner::with_cache(cache.clone());
            jobs.set_metrics(metrics.clone());
            jobs.set_trace(persistent.clone());
            move |i: usize, cell: &SweepCell| {
                let traced = trace
                    .as_ref()
                    .filter(|(label, _)| *label == cell.label)
                    .map(|(_, s)| s.clone());
                let mut factory = scheduler_factory(&cell.scheduler)?;
                run_cell_on(&mut jobs, Engine::Threaded, cell, &compiled[i], traced, &mut factory)
            }
        })
    }
}

/// The [`SweepRunner`] equivalent over the discrete-event baseline:
/// same grid, same cell semantics, but cells run on the event-driven
/// simulator — no threads, no kernel execution, durations from the
/// configured cost model. Cells lower to [`ScenarioSpec`]s exactly like
/// the threaded runner (DES runs are always `Modeled` timing), share
/// compiled scenarios per fingerprint, and — since DES runs are always
/// deterministic — repeated cells replay from the [`ResultCache`].
///
/// The embedded [`JobRunner`] keeps one warm [`DesSimulator`] per
/// engine-config shape, and the simulator owns all per-run scratch:
/// the calendar-queue event core, ready rings, SoA completion columns,
/// per-PE cost slots, and the slot-assigned estimate book (values-only
/// reset when the scenario fingerprint repeats). Cell iterations and
/// same-shape cells therefore pay compile/setup once and run
/// allocation-light thereafter; in [`Self::run_batch_parallel`] that
/// warm state is per worker, never shared or contended.
pub struct DesSweepRunner<'a> {
    library: &'a AppLibrary,
    /// Arc'd view of the library, shared into every [`ScenarioSpec`].
    apps: Arc<AppLibrary>,
    config: DesConfig,
    /// Job front door: warm simulators plus the shared result cache.
    pub(crate) jobs: JobRunner,
    scenarios: HashMap<(Fingerprint, bool), Arc<CompiledScenario>>,
    /// `(cell label, sink)` of the one designated trace target, if any.
    trace: Option<(String, TraceSink)>,
    /// Live batch progress, shared with whoever installed it.
    progress: Option<SweepProgress>,
}

impl<'a> DesSweepRunner<'a> {
    /// A runner with the default (empty cost table) DES configuration.
    pub fn new(library: &'a AppLibrary) -> Self {
        Self::with_config(library, DesConfig::default())
    }

    /// A runner with an explicit DES configuration, applied to every
    /// cell.
    pub fn with_config(library: &'a AppLibrary, config: DesConfig) -> Self {
        let mut jobs = JobRunner::new();
        jobs.set_metrics(config.metrics.clone());
        jobs.set_trace(config.trace.clone());
        DesSweepRunner {
            library,
            apps: Arc::new(library.clone()),
            config,
            jobs,
            scenarios: HashMap::new(),
            trace: None,
            progress: None,
        }
    }

    /// The application library the runner draws specs from.
    pub fn library(&self) -> &'a AppLibrary {
        self.library
    }

    /// The result cache shared by this runner's jobs.
    pub fn cache(&self) -> &ResultCache {
        self.jobs.cache()
    }

    /// Replaces the result cache.
    pub fn set_cache(&mut self, cache: ResultCache) {
        self.jobs.set_cache(cache);
    }

    /// Installs a shared [`SweepProgress`] handle (see
    /// [`SweepRunner::set_progress`]).
    pub fn set_progress(&mut self, progress: SweepProgress) {
        self.progress = Some(progress);
    }

    /// The current batch progress, if a handle is installed.
    pub fn progress(&self) -> Option<SweepProgressSnapshot> {
        self.progress.as_ref().map(|p| p.snapshot())
    }

    /// Designates the cell labeled `label` for event tracing (see
    /// [`SweepRunner::trace_cell`] — same one-cell, final-iteration
    /// semantics).
    pub fn trace_cell(&mut self, label: impl Into<String>, sink: TraceSink) {
        self.trace = Some((label.into(), sink));
    }

    /// Lowers a cell to a scenario spec under this runner's DES
    /// configuration: always `Modeled` timing, the fixed per-invocation
    /// scheduling overhead, no reservation.
    fn cell_spec(&self, cell: &SweepCell) -> ScenarioSpec {
        let overhead = if self.config.overhead_per_invocation.is_zero() {
            OverheadMode::None
        } else {
            OverheadMode::Fixed(self.config.overhead_per_invocation)
        };
        ScenarioSpec {
            library: Arc::clone(&self.apps),
            platform: Arc::clone(&cell.platform),
            scheduler: cell.scheduler.clone(),
            workload: Arc::clone(&cell.workload),
            timing: TimingMode::Modeled,
            overhead,
            cost: self.config.cost.clone(),
            reservation_depth: 0,
            faults: cell.faults.clone().or_else(|| self.config.faults.clone()),
        }
    }

    /// Runs one cell with its named library scheduler (a fresh policy
    /// instance per iteration; the name is resolved once).
    pub fn run_cell(&mut self, cell: &SweepCell) -> Result<CellResult, EmuError> {
        let mut factory = scheduler_factory(&cell.scheduler)?;
        self.run_cell_inner(cell, false, &mut factory)
    }

    /// Runs one cell with a custom scheduler factory (see
    /// [`SweepRunner::run_cell_with`]).
    pub fn run_cell_with(
        &mut self,
        cell: &SweepCell,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<CellResult, EmuError> {
        self.run_cell_inner(cell, true, make_scheduler)
    }

    fn run_cell_inner(
        &mut self,
        cell: &SweepCell,
        custom: bool,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<CellResult, EmuError> {
        let spec = self.cell_spec(cell);
        let scenario = scenario_for(&mut self.scenarios, spec, custom)?;
        let traced =
            self.trace.as_ref().filter(|(label, _)| *label == cell.label).map(|(_, s)| s.clone());
        run_cell_on(&mut self.jobs, Engine::Des, cell, &scenario, traced, make_scheduler)
    }

    /// Runs every cell of a grid in order, stopping at the first error.
    pub fn run_batch(&mut self, cells: &[SweepCell]) -> Result<Vec<CellResult>, EmuError> {
        if let Some(p) = self.progress.clone() {
            p.begin_batch(cells.len(), 1);
            return cells
                .iter()
                .map(|c| {
                    let start = Instant::now();
                    p.cell_started();
                    let result = self.run_cell(c);
                    p.cell_finished(start.elapsed(), result.is_ok());
                    result
                })
                .collect();
        }
        cells.iter().map(|c| self.run_cell(c)).collect()
    }

    /// Runs a grid across `workers` threads, returning results in cell
    /// order (see [`SweepRunner::run_batch_parallel`]; the DES is pure
    /// single-threaded compute per cell, so grids scale with cores).
    /// DES runs are deterministic, so duplicate cells across workers
    /// collapse into shared [`ResultCache`] hits. Each worker owns its
    /// own [`JobRunner`] and thus its own warm simulators — the arena
    /// scratch and estimate books described on [`DesSweepRunner`] are
    /// reused across that worker's cells without cross-thread sharing.
    pub fn run_batch_parallel(
        &mut self,
        cells: &[SweepCell],
        workers: usize,
    ) -> Result<Vec<CellResult>, EmuError> {
        let workers = workers.clamp(1, cells.len().max(1));
        if workers <= 1 {
            return self.run_batch(cells);
        }
        let mut compiled = Vec::with_capacity(cells.len());
        for cell in cells {
            let spec = self.cell_spec(cell);
            compiled.push(scenario_for(&mut self.scenarios, spec, false)?);
        }
        let compiled = &compiled;
        let trace = &self.trace;
        let cache = self.jobs.cache().clone();
        let metrics = self.config.metrics.clone();
        let persistent = self.config.trace.clone();
        run_cells_parallel(cells, workers, self.progress.as_ref(), || {
            let mut jobs = JobRunner::with_cache(cache.clone());
            jobs.set_metrics(metrics.clone());
            jobs.set_trace(persistent.clone());
            move |i: usize, cell: &SweepCell| {
                let traced = trace
                    .as_ref()
                    .filter(|(label, _)| *label == cell.label)
                    .map(|(_, s)| s.clone());
                let mut factory = scheduler_factory(&cell.scheduler)?;
                run_cell_on(&mut jobs, Engine::Des, cell, &compiled[i], traced, &mut factory)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CostSpec;
    use crate::sched::FrfsScheduler;
    use dssoc_platform::presets::zcu102;

    fn tiny_setup() -> (AppLibrary, Arc<Workload>) {
        use dssoc_appmodel::json::AppJson;
        use dssoc_appmodel::registry::KernelRegistry;
        use dssoc_appmodel::WorkloadSpec;
        let mut registry = KernelRegistry::new();
        registry.register_fn("t.so", "work", |ctx| {
            let n = ctx.read_u32("n")?;
            ctx.write_u32("n", n + 1)
        });
        let json = AppJson::from_str(
            r#"{
            "AppName": "tiny",
            "SharedObject": "t.so",
            "Variables": {"n": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0, "val": [0,0,0,0]}},
            "DAG": {"only": {"arguments": ["n"],
                             "platforms": [{"name": "cpu", "runfunc": "work"}]}}
        }"#,
        )
        .unwrap();
        let mut library = AppLibrary::new();
        library.register_json(&json, &registry).unwrap();
        let workload =
            Arc::new(WorkloadSpec::validation([("tiny", 2usize)]).generate(&library).unwrap());
        (library, workload)
    }

    fn quiet_config() -> EmulationConfig {
        EmulationConfig {
            timing: TimingMode::Modeled,
            overhead: OverheadMode::None,
            cost: CostSpec::default(),
            reservation_depth: 0,
            trace: None,
            faults: None,
            metrics: None,
        }
    }

    #[test]
    fn batch_reuses_pools_across_cells() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cells = vec![
            SweepCell::new(zcu102(2, 0), "frfs", Arc::clone(&workload)).iterations(2),
            SweepCell::new(zcu102(2, 0), "met", Arc::clone(&workload)),
            SweepCell::new(zcu102(1, 0), "frfs", workload).warmup(true),
        ];
        let before = crate::resource::threads_spawned_total();
        let results = runner.run_batch(&cells).unwrap();
        let spawned = crate::resource::threads_spawned_total() - before;
        assert_eq!(spawned, 3, "two pools: 2 PEs + 1 PE, reused across 5 runs");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].makespans_ms.len(), 2);
        assert_eq!(results[1].label, "zcu102-2C+0F/met");
        assert_eq!(results[2].makespans_ms.len(), 1, "warm-up run discarded");
        for r in &results {
            assert_eq!(r.stats.completed_apps(), 2);
            assert!(r.makespans_ms.iter().all(|&m| m > 0.0));
        }
    }

    #[test]
    fn unknown_scheduler_is_a_config_error() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cell = SweepCell::new(zcu102(1, 0), "heft", workload);
        let err = runner.run_cell(&cell).unwrap_err();
        assert!(err.to_string().contains("heft"), "{err}");
    }

    #[test]
    fn custom_scheduler_factory() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cell = SweepCell::new(zcu102(1, 0), "custom", workload).label("mine").iterations(2);
        let result = runner.run_cell_with(&cell, &mut || Box::new(FrfsScheduler::new())).unwrap();
        assert_eq!(result.label, "mine");
        assert_eq!(result.makespans_ms.len(), 2);
    }

    #[test]
    fn des_runner_reuses_simulators() {
        let (library, workload) = tiny_setup();
        let mut runner = DesSweepRunner::new(&library);
        let cells = vec![
            SweepCell::new(zcu102(2, 0), "frfs", Arc::clone(&workload)).iterations(2),
            SweepCell::new(zcu102(2, 0), "met", Arc::clone(&workload)),
            SweepCell::new(zcu102(1, 0), "frfs", workload).warmup(true),
        ];
        let results = runner.run_batch(&cells).unwrap();
        assert_eq!(runner.jobs.warm_engines(), (0, 2), "one simulator per platform shape");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].makespans_ms.len(), 2);
        assert_eq!(results[2].makespans_ms.len(), 1, "warm-up run discarded");
        for r in &results {
            assert_eq!(r.stats.completed_apps(), 2);
        }
    }

    #[test]
    fn duplicate_des_cells_replay_from_result_cache() {
        let (library, workload) = tiny_setup();
        let mut runner = DesSweepRunner::new(&library);
        // Same scenario content under two labels: one live run, one
        // cache replay with byte-identical makespans.
        let cells = vec![
            SweepCell::new(zcu102(2, 0), "frfs", Arc::clone(&workload)).label("a"),
            SweepCell::new(zcu102(2, 0), "frfs", workload).label("b"),
        ];
        let results = runner.run_batch(&cells).unwrap();
        assert_eq!(runner.cache().hits(), 1, "duplicate cell served from cache");
        assert_eq!(runner.cache().misses(), 1);
        assert_eq!(results[0].makespans_ms, results[1].makespans_ms);
        assert_eq!(results[1].label, "b", "labels stay per-cell even on cache hits");
    }

    #[test]
    fn parallel_single_worker_uses_own_pools() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cells = vec![SweepCell::new(zcu102(1, 0), "frfs", workload)];
        let results = runner.run_batch_parallel(&cells, 4).unwrap();
        assert_eq!(results.len(), 1, "single cell degrades to sequential");
        assert_eq!(runner.jobs.warm_engines(), (1, 0), "sequential fallback warms self's pool");
    }
}
