//! Batch sweep API: run a grid of (platform, scheduler, workload) cells
//! with per-cell iteration counts against warm, reusable emulation
//! pools.
//!
//! Every case study in the paper's evaluation (§III) is a sweep of this
//! shape — Fig. 9 sweeps platform configurations, Fig. 10 sweeps
//! schedulers × injection rates, Fig. 11 sweeps big.LITTLE mixes — and
//! each used to hand-roll the same harness loop. [`SweepRunner`] owns
//! that loop once: it resolves schedulers by name, repeats each cell
//! with an optional discarded warm-up run (the paper's
//! repeated-iteration methodology), and caches one [`Emulation`] per
//! distinct platform so consecutive cells reuse the persistent PE
//! resource pool instead of respawning threads.

use std::sync::Arc;

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::workload::Workload;
use dssoc_platform::pe::PlatformConfig;
use dssoc_trace::TraceSink;

use crate::engine::{EmuError, Emulation, EmulationConfig};
use crate::sched::{by_name, Scheduler};
use crate::stats::EmulationStats;

/// One cell of a sweep grid: a platform, a scheduler, a workload, and
/// how often to repeat the run.
#[derive(Clone)]
pub struct SweepCell {
    /// Display label carried into the [`CellResult`].
    pub label: String,
    /// Platform to emulate.
    pub platform: PlatformConfig,
    /// Library scheduler name (resolved via [`by_name`]).
    pub scheduler: String,
    /// Workload to run (shared, so grids can reuse one workload across
    /// platforms without cloning it per cell).
    pub workload: Arc<Workload>,
    /// Number of measured iterations (at least 1).
    pub iterations: usize,
    /// Whether to prepend one discarded warm-up run.
    pub warmup: bool,
}

impl SweepCell {
    /// A single-iteration cell without warm-up, labeled
    /// `"{platform}/{scheduler}"`.
    pub fn new(
        platform: PlatformConfig,
        scheduler: impl Into<String>,
        workload: Arc<Workload>,
    ) -> Self {
        let scheduler = scheduler.into();
        SweepCell {
            label: format!("{}/{}", platform.name, scheduler),
            platform,
            scheduler,
            workload,
            iterations: 1,
            warmup: false,
        }
    }

    /// Replaces the display label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the measured iteration count (clamped to at least 1).
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n.max(1);
        self
    }

    /// Enables or disables the discarded warm-up run.
    pub fn warmup(mut self, warmup: bool) -> Self {
        self.warmup = warmup;
        self
    }
}

/// The outcome of one sweep cell.
#[derive(Debug)]
pub struct CellResult {
    /// The cell's label.
    pub label: String,
    /// Makespan of each measured iteration, in milliseconds.
    pub makespans_ms: Vec<f64>,
    /// Full statistics of the last measured iteration.
    pub stats: EmulationStats,
}

/// Runs sweep cells against warm emulation pools.
///
/// The runner keeps one [`Emulation`] per distinct platform it has
/// seen; cells on the same platform — and repeated iterations within a
/// cell — share its resource-manager threads.
pub struct SweepRunner<'a> {
    library: &'a AppLibrary,
    config: EmulationConfig,
    pools: Vec<Emulation>,
    /// `(cell label, sink)` of the one designated trace target, if any.
    trace: Option<(String, TraceSink)>,
}

impl<'a> SweepRunner<'a> {
    /// A runner with the default engine configuration.
    pub fn new(library: &'a AppLibrary) -> Self {
        Self::with_config(library, EmulationConfig::default())
    }

    /// A runner with an explicit engine configuration, applied to every
    /// cell.
    pub fn with_config(library: &'a AppLibrary, config: EmulationConfig) -> Self {
        SweepRunner { library, config, pools: Vec::new(), trace: None }
    }

    /// Designates the cell labeled `label` for event tracing: its final
    /// measured iteration records into `sink`'s session. One cell, one
    /// iteration — a sweep's other cells and warm-up/earlier iterations
    /// stay untraced, so the trace doesn't distort the measured grid and
    /// the exported timeline isn't a concatenation of repeats.
    pub fn trace_cell(&mut self, label: impl Into<String>, sink: TraceSink) {
        self.trace = Some((label.into(), sink));
    }

    /// The warm pool for `platform`, creating it on first use.
    fn emulation_for(&mut self, platform: &PlatformConfig) -> Result<&mut Emulation, EmuError> {
        if let Some(i) = self.pools.iter().position(|e| e.platform() == platform) {
            return Ok(&mut self.pools[i]);
        }
        self.pools.push(Emulation::with_config(platform.clone(), self.config.clone())?);
        Ok(self.pools.last_mut().expect("just pushed"))
    }

    /// Runs one cell with its named library scheduler (a fresh policy
    /// instance per iteration).
    pub fn run_cell(&mut self, cell: &SweepCell) -> Result<CellResult, EmuError> {
        by_name(&cell.scheduler)
            .ok_or_else(|| EmuError::Config(format!("unknown scheduler '{}'", cell.scheduler)))?;
        self.run_cell_with(cell, &mut || by_name(&cell.scheduler).expect("checked above"))
    }

    /// Runs one cell with a custom scheduler factory (called once per
    /// iteration, so stateful policies start fresh each time).
    pub fn run_cell_with(
        &mut self,
        cell: &SweepCell,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<CellResult, EmuError> {
        let library = self.library;
        let traced =
            self.trace.as_ref().filter(|(label, _)| *label == cell.label).map(|(_, s)| s.clone());
        let emu = self.emulation_for(&cell.platform)?;
        let warmup = usize::from(cell.warmup);
        let total = cell.iterations + warmup;
        let mut makespans = Vec::with_capacity(cell.iterations);
        let mut last: Option<EmulationStats> = None;
        for i in 0..total {
            if let Some(sink) = &traced {
                // Trace only the final measured iteration.
                if i + 1 == total {
                    emu.set_trace(Some(sink.clone()));
                }
            }
            let mut sched = make_scheduler();
            let run = emu.run(sched.as_mut(), &cell.workload, library);
            if traced.is_some() && i + 1 == total {
                emu.set_trace(None);
            }
            let stats = run?;
            if i >= warmup {
                makespans.push(stats.makespan.as_secs_f64() * 1e3);
                last = Some(stats);
            }
        }
        Ok(CellResult {
            label: cell.label.clone(),
            makespans_ms: makespans,
            stats: last.expect("at least one measured iteration"),
        })
    }

    /// Runs every cell of a grid in order, stopping at the first error.
    pub fn run_batch(&mut self, cells: &[SweepCell]) -> Result<Vec<CellResult>, EmuError> {
        cells.iter().map(|c| self.run_cell(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{OverheadMode, TimingMode};
    use crate::sched::FrfsScheduler;
    use dssoc_platform::cost::ScaledMeasuredCost;
    use dssoc_platform::presets::zcu102;

    fn tiny_setup() -> (AppLibrary, Arc<Workload>) {
        use dssoc_appmodel::json::AppJson;
        use dssoc_appmodel::registry::KernelRegistry;
        use dssoc_appmodel::WorkloadSpec;
        let mut registry = KernelRegistry::new();
        registry.register_fn("t.so", "work", |ctx| {
            let n = ctx.read_u32("n")?;
            ctx.write_u32("n", n + 1)
        });
        let json = AppJson::from_str(
            r#"{
            "AppName": "tiny",
            "SharedObject": "t.so",
            "Variables": {"n": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0, "val": [0,0,0,0]}},
            "DAG": {"only": {"arguments": ["n"],
                             "platforms": [{"name": "cpu", "runfunc": "work"}]}}
        }"#,
        )
        .unwrap();
        let mut library = AppLibrary::new();
        library.register_json(&json, &registry).unwrap();
        let workload =
            Arc::new(WorkloadSpec::validation([("tiny", 2usize)]).generate(&library).unwrap());
        (library, workload)
    }

    fn quiet_config() -> EmulationConfig {
        EmulationConfig {
            timing: TimingMode::Modeled,
            overhead: OverheadMode::None,
            cost: Arc::new(ScaledMeasuredCost::default()),
            reservation_depth: 0,
            trace: None,
        }
    }

    #[test]
    fn batch_reuses_pools_across_cells() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cells = vec![
            SweepCell::new(zcu102(2, 0), "frfs", Arc::clone(&workload)).iterations(2),
            SweepCell::new(zcu102(2, 0), "met", Arc::clone(&workload)),
            SweepCell::new(zcu102(1, 0), "frfs", workload).warmup(true),
        ];
        let before = crate::resource::threads_spawned_total();
        let results = runner.run_batch(&cells).unwrap();
        let spawned = crate::resource::threads_spawned_total() - before;
        assert_eq!(spawned, 3, "two pools: 2 PEs + 1 PE, reused across 5 runs");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].makespans_ms.len(), 2);
        assert_eq!(results[1].label, "zcu102-2C+0F/met");
        assert_eq!(results[2].makespans_ms.len(), 1, "warm-up run discarded");
        for r in &results {
            assert_eq!(r.stats.completed_apps(), 2);
            assert!(r.makespans_ms.iter().all(|&m| m > 0.0));
        }
    }

    #[test]
    fn unknown_scheduler_is_a_config_error() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cell = SweepCell::new(zcu102(1, 0), "heft", workload);
        let err = runner.run_cell(&cell).unwrap_err();
        assert!(err.to_string().contains("heft"), "{err}");
    }

    #[test]
    fn custom_scheduler_factory() {
        let (library, workload) = tiny_setup();
        let mut runner = SweepRunner::with_config(&library, quiet_config());
        let cell = SweepCell::new(zcu102(1, 0), "custom", workload).label("mine").iterations(2);
        let result = runner.run_cell_with(&cell, &mut || Box::new(FrfsScheduler::new())).unwrap();
        assert_eq!(result.label, "mine");
        assert_eq!(result.makespans_ms.len(), 2);
    }
}
