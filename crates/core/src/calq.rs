//! A calendar-queue event structure for the DES completion path.
//!
//! The classic DES pending-event set is a binary heap: O(log n) per
//! operation and a pointer-chasing sift on every push/pop. A calendar
//! queue (Brown 1988, refined by the ladder queue) buckets events by
//! time window instead — with a width matched to the event density,
//! enqueue and dequeue are amortized O(1), and everything due at one
//! clock value drains as a *batch* from a single bucket window instead
//! of one heap pop per event.
//!
//! [`CalendarQueue`] keeps the design honest at both ends of the scale:
//!
//! * **Small occupancy** (the DES steady state: at most one in-flight
//!   completion per PE) stays in a handful of buckets and is scanned
//!   directly — an unsorted-vector min-scan, which beats a heap outright
//!   below ~16 elements and never pays bucket-administration cost.
//! * **Growth** (many PEs, retry storms, future sharded runs) doubles
//!   the bucket array once occupancy exceeds a few items per bucket and
//!   re-derives the bucket width from the observed event-time spread, so
//!   the structure converges to the textbook O(1) calendar.
//!
//! Ordering is delegated entirely to `T: Ord`, so the engines' shared
//! tie-break — `(time, rank, task key, seq)` — is preserved *exactly*:
//! events due in one window are drained together and sorted by full
//! `Ord` before they are handed back, and equal times always land in the
//! same bucket window (a window never splits a timestamp), so the pop
//! sequence is bit-identical to `BinaryHeap<Reverse<T>>` — which the
//! property tests in this module pin down.
//!
//! All storage is capacity-retaining: [`CalendarQueue::clear`] empties
//! the queue without freeing buckets, so a warm simulator reuses the
//! same allocations run after run (see [`crate::arena`]).

/// Types with a nanosecond timestamp the queue can bucket by.
///
/// `time_ns()` must equal the most-significant component of the type's
/// `Ord` — the queue batches by time and breaks ties by full `Ord`, and
/// that decomposition is only coherent when `Ord` sorts by time first.
pub trait Timed {
    /// The event's due time in nanoseconds.
    fn time_ns(&self) -> u64;
}

/// Initial (and minimum) bucket count; always a power of two by
/// construction (doubling only).
const MIN_BUCKETS: usize = 4;
/// Bucket-count ceiling — beyond this, buckets just get denser.
const MAX_BUCKETS: usize = 1 << 16;
/// Grow once occupancy exceeds this many items per bucket on average.
const GROW_PER_BUCKET: usize = 4;
/// Below this occupancy, skip the year sweep and min-scan directly.
const DIRECT_SCAN_MAX: usize = 16;

/// A calendar-queue priority queue over [`Timed`] + `Ord` events (see
/// the module docs).
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<T>>,
    /// Nanoseconds per bucket window (always ≥ 1).
    width: u64,
    len: usize,
    /// Lower bound on the minimum queued time — the scan start. Raised
    /// as events are popped, lowered by out-of-order pushes.
    floor: u64,
    /// Cached minimum queued time (`None` = unknown, recompute).
    cached_min: Option<u64>,
}

impl<T: Timed> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Timed> CalendarQueue<T> {
    /// An empty queue with the minimum bucket array.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1 << 12,
            len: 0,
            floor: 0,
            cached_min: None,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the queue, retaining every bucket allocation (the warm
    /// re-run path).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.floor = 0;
        self.cached_min = None;
    }

    #[inline]
    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) % self.buckets.len() as u64) as usize
    }

    /// The exclusive upper bound of the window containing `t`.
    #[inline]
    fn window_hi(&self, t: u64) -> u128 {
        (t as u128 / self.width as u128 + 1) * self.width as u128
    }

    /// Enqueues an event.
    pub fn push(&mut self, item: T) {
        let t = item.time_ns();
        if t < self.floor {
            self.floor = t;
        }
        if let Some(m) = self.cached_min {
            if t < m {
                self.cached_min = Some(t);
            }
        }
        let slot = self.bucket_of(t);
        self.buckets[slot].push(item);
        self.len += 1;
        if self.len > self.buckets.len() * GROW_PER_BUCKET && self.buckets.len() < MAX_BUCKETS {
            self.grow();
        }
    }

    /// Doubles the bucket array and re-derives the width from the
    /// observed event-time spread (≈ 3× the average inter-event gap, the
    /// classic calendar-queue sizing), then rehashes.
    fn grow(&mut self) {
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for it in self.buckets.iter().flatten() {
            let t = it.time_ns();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let n = self.buckets.len() * 2;
        self.width = ((hi - lo) / self.len as u64).max(1).saturating_mul(3);
        let old = std::mem::replace(&mut self.buckets, (0..n).map(|_| Vec::new()).collect());
        for it in old.into_iter().flatten() {
            let slot = self.bucket_of(it.time_ns());
            self.buckets[slot].push(it);
        }
    }

    /// The minimum queued time, or `None` when empty. Cached between
    /// mutations; the scan itself is the calendar sweep (current year in
    /// window order, then a direct search for far-future events).
    pub fn peek_time(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        if let Some(m) = self.cached_min {
            return Some(m);
        }
        let m = self.find_min();
        self.cached_min = Some(m);
        Some(m)
    }

    fn find_min(&self) -> u64 {
        debug_assert!(self.len > 0);
        let n = self.buckets.len();
        if self.len <= DIRECT_SCAN_MAX {
            return self.direct_min();
        }
        // Sweep the current year: the first bucket holding an event
        // inside its own window holds the global minimum (later buckets
        // cover strictly later windows, and a timestamp never straddles
        // two windows).
        let year = self.floor / self.width;
        for k in 0..n as u64 {
            let slot = ((year + k) % n as u64) as usize;
            let hi = (year as u128 + k as u128 + 1) * self.width as u128;
            if let Some(m) =
                self.buckets[slot].iter().map(Timed::time_ns).filter(|&t| (t as u128) < hi).min()
            {
                return m;
            }
        }
        // Everything queued is at least a full year ahead: direct search.
        self.direct_min()
    }

    fn direct_min(&self) -> u64 {
        self.buckets.iter().flatten().map(Timed::time_ns).min().expect("non-empty")
    }

    /// Pops the minimum event by full `Ord` (ties beyond the timestamp
    /// included) — the `BinaryHeap<Reverse<T>>::pop` equivalent.
    pub fn pop_min(&mut self) -> Option<T>
    where
        T: Ord,
    {
        let t = self.peek_time()?;
        let slot = self.bucket_of(t);
        let bucket = &mut self.buckets[slot];
        let mut best = usize::MAX;
        for (i, it) in bucket.iter().enumerate() {
            if it.time_ns() == t && (best == usize::MAX || *it < bucket[best]) {
                best = i;
            }
        }
        debug_assert_ne!(best, usize::MAX, "cached minimum must be present");
        let item = bucket.swap_remove(best);
        self.len -= 1;
        self.floor = t;
        self.cached_min = None;
        Some(item)
    }

    /// Drains every event with `time_ns() <= now` into `out`, in exactly
    /// the order repeated [`Self::pop_min`] calls would yield, and
    /// returns how many were drained.
    ///
    /// This is the batched path: each due bucket window is extracted in
    /// one pass and sorted by full `Ord`, so a burst of same-timestamp
    /// completions costs one bucket scan plus one small sort instead of
    /// one heap pop each.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<T>) -> usize
    where
        T: Ord,
    {
        let start = out.len();
        while let Some(t) = self.peek_time() {
            if t > now {
                break;
            }
            // Extract the whole due slice of the window containing the
            // minimum; equal timestamps always share a window, so the
            // sorted batch is globally ordered.
            let cut = self.window_hi(t).min(now as u128 + 1);
            let slot = self.bucket_of(t);
            let bucket = &mut self.buckets[slot];
            let mark = out.len();
            let mut i = 0;
            while i < bucket.len() {
                if (bucket[i].time_ns() as u128) < cut {
                    out.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            let drained = out.len() - mark;
            debug_assert!(drained > 0, "minimum must lie inside its own window");
            self.len -= drained;
            out[mark..].sort_unstable();
            self.floor = out.last().expect("drained > 0").time_ns();
            self.cached_min = None;
        }
        out.len() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The shape of the engines' shared tie-break: `(time, rank, key,
    /// seq)`. `Ord` derives lexicographically, time first — exactly the
    /// [`Timed`] coherence requirement.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Ev {
        time: u64,
        rank: u8,
        key: (u32, u32),
        seq: u64,
    }

    impl Timed for Ev {
        fn time_ns(&self) -> u64 {
            self.time
        }
    }

    fn ev(time: u64, seq: u64) -> Ev {
        Ev { time, rank: 0, key: (seq as u32 % 3, seq as u32 % 5), seq }
    }

    #[test]
    fn pops_in_time_then_tiebreak_order() {
        let mut q = CalendarQueue::new();
        for (t, s) in [(50u64, 0u64), (10, 1), (50, 2), (10, 3), (7, 4)] {
            q.push(ev(t, s));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(7));
        let mut got = Vec::new();
        while let Some(e) = q.pop_min() {
            got.push((e.time, e.seq));
        }
        // Same-timestamp ties resolved by the full Ord (key, then seq).
        let mut want = [(50u64, 0u64), (10, 1), (50, 2), (10, 3), (7, 4)];
        want.sort_by_key(|&(t, s)| (t, (s as u32 % 3, s as u32 % 5), s));
        assert_eq!(got, want);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_batches_whole_timestamps() {
        let mut q = CalendarQueue::new();
        for s in 0..6 {
            q.push(ev(100, s));
        }
        q.push(ev(101, 6));
        q.push(ev(5_000_000, 7));
        let mut out = Vec::new();
        assert_eq!(q.pop_due(100, &mut out), 6, "all six t=100 events in one batch");
        assert!(out.iter().all(|e| e.time == 100));
        assert_eq!(q.pop_due(99, &mut out), 0, "nothing newly due");
        assert_eq!(q.pop_due(200, &mut out), 1);
        assert_eq!(out.last().unwrap().time, 101);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_retains_and_reuses() {
        let mut q = CalendarQueue::new();
        for s in 0..100 {
            q.push(ev(s * 997, s));
        }
        let grown = q.buckets.len();
        assert!(grown > MIN_BUCKETS, "100 events should have grown the calendar");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.buckets.len(), grown, "clear keeps the bucket array");
        // Reuse after clear behaves like new.
        q.push(ev(3, 0));
        q.push(ev(1, 1));
        assert_eq!(q.pop_min().unwrap().time, 1);
        assert_eq!(q.pop_min().unwrap().time, 3);
    }

    #[test]
    fn out_of_order_push_lowers_the_floor() {
        let mut q = CalendarQueue::new();
        q.push(ev(1000, 0));
        assert_eq!(q.pop_min().unwrap().seq, 0);
        // Push below the last popped time: still retrievable.
        q.push(ev(10, 1));
        q.push(ev(2000, 2));
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop_min().unwrap().seq, 1);
        assert_eq!(q.pop_min().unwrap().seq, 2);
    }

    #[test]
    fn growth_preserves_order_across_wide_spreads() {
        // Times spanning ns to seconds force both the grow path and the
        // direct-search fallback (events far beyond one year window).
        let mut q = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for s in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 3_000_000_000;
            q.push(ev(t, s));
            heap.push(Reverse(ev(t, s)));
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop_min(), Some(want));
        }
        assert!(q.is_empty());
    }

    /// One op of the differential driver below.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push an event at `last_pop + delta` (a dispatch or a
        /// fault-retry re-insertion — both land at or after the clock).
        Push { delta: u64 },
        /// Pop one event.
        Pop,
        /// Drain everything due within `ahead` of the last popped time
        /// (the batched same-timestamp path).
        Due { ahead: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Tiny deltas make same-timestamp collisions common.
            (0u64..4).prop_map(|delta| Op::Push { delta }),
            (0u64..1_000_000).prop_map(|delta| Op::Push { delta }),
            Just(Op::Pop),
            (0u64..8).prop_map(|ahead| Op::Due { ahead }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// Satellite: calendar-queue pop order ≡ `BinaryHeap<Reverse<_>>`
        /// pop order on the shared `(time, rank, key, seq)` tie-break,
        /// under arbitrary interleavings of pushes (including retry-style
        /// re-insertions after pops) and batched draining.
        #[test]
        #[cfg_attr(miri, ignore)] // exhaustive cases are too slow under miri
        fn matches_binary_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut q: CalendarQueue<Ev> = CalendarQueue::new();
            let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
            let mut clock = 0u64; // last popped time, the DES clock analogue
            let mut seq = 0u64;
            for op in ops {
                match op {
                    Op::Push { delta } => {
                        let e = ev(clock.saturating_add(delta), seq);
                        seq += 1;
                        q.push(e);
                        heap.push(Reverse(e));
                    }
                    Op::Pop => {
                        let want = heap.pop().map(|Reverse(e)| e);
                        let got = q.pop_min();
                        prop_assert_eq!(got, want);
                        if let Some(e) = got { clock = clock.max(e.time); }
                        prop_assert_eq!(q.len(), heap.len());
                    }
                    Op::Due { ahead } => {
                        let now = clock.saturating_add(ahead);
                        let mut got = Vec::new();
                        q.pop_due(now, &mut got);
                        let mut want = Vec::new();
                        while heap.peek().is_some_and(|Reverse(e)| e.time <= now) {
                            want.push(heap.pop().map(|Reverse(e)| e).expect("peeked"));
                        }
                        prop_assert_eq!(&got, &want, "batched drain must equal heap pops");
                        if let Some(e) = got.last() { clock = clock.max(e.time); }
                    }
                }
                prop_assert_eq!(q.peek_time(), heap.peek().map(|Reverse(e)| e.time));
            }
        }
    }

    /// A miri-sized deterministic version of the differential above, so
    /// the nightly miri pass still exercises push/pop/due/grow.
    #[test]
    fn matches_binary_heap_smoke() {
        let mut q: CalendarQueue<Ev> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
        let mut x = 42u64;
        let mut clock = 0u64;
        for s in 0..200u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let e = ev(clock + x % 7, s);
            q.push(e);
            heap.push(Reverse(e));
            if x.is_multiple_of(3) {
                let want = heap.pop().map(|Reverse(e)| e);
                let got = q.pop_min();
                assert_eq!(got, want);
                if let Some(e) = got {
                    clock = clock.max(e.time);
                }
            }
        }
        let mut got = Vec::new();
        q.pop_due(u64::MAX, &mut got);
        let mut want = Vec::new();
        while let Some(Reverse(e)) = heap.pop() {
            want.push(e);
        }
        assert_eq!(got, want);
    }
}
