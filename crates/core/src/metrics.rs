//! Exec-core metrics instrumentation.
//!
//! [`ExecMetrics`] is the metrics counterpart of
//! [`ExecTracer`](crate::exec::ExecTracer): one optional per-run handle
//! shared (via `Rc`) by the pieces of an engine loop — its
//! [`ReadyList`](crate::exec::ReadyList), its
//! [`PeSlots`](crate::exec::PeSlots), its
//! [`CompletionSink`](crate::exec::CompletionSink). Disabled costs one
//! branch per would-be sample. Enabled, every sample lands in
//! producer-private cells of a shared [`MetricsRegistry`], so another
//! thread can snapshot the registry mid-run while the engine records
//! lock-free.
//!
//! Because the handle is only driven from the shared exec-core funnels,
//! the threaded engine and the DES publish the *same* metric families
//! from the same touchpoints — identical values on deterministic
//! configs, which `tests/metrics_differential.rs` asserts. The only
//! families exempt from that equality are `dssoc_task_skew_ns` (needs a
//! real measured duration, which only the threaded engine has) and
//! `dssoc_runs` (labeled by the engine-decorated scheduler name).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::instance::AppInstance;
use dssoc_metrics::{CounterCell, GaugeCell, HistogramCell, MetricsRegistry};
use dssoc_platform::pe::PlatformConfig;
use dssoc_trace::FaultKind;

use crate::intern::Name;
use crate::stats::{AppRecord, TaskRecord};

/// The four workload-manager phases overhead is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadPhase {
    Monitor,
    Update,
    Schedule,
    Dispatch,
}

impl OverheadPhase {
    pub fn name(self) -> &'static str {
        match self {
            OverheadPhase::Monitor => "monitor",
            OverheadPhase::Update => "update",
            OverheadPhase::Schedule => "schedule",
            OverheadPhase::Dispatch => "dispatch",
        }
    }
}

/// Per-PE cells, indexed by `PeId`.
struct PeCells {
    completed: CounterCell,
    exec_ns: HistogramCell,
}

/// Per-application cells, keyed by interned app name.
struct AppCells {
    completed: CounterCell,
    latency_ns: HistogramCell,
}

struct Inner {
    registry: MetricsRegistry,
    tasks_ready: CounterCell,
    ready_depth: GaugeCell,
    ready_depth_observed: HistogramCell,
    task_wait_ns: HistogramCell,
    task_skew_ns: HistogramCell,
    pes_busy: GaugeCell,
    pes_quarantined: GaugeCell,
    per_pe: Vec<Option<PeCells>>,
    apps: HashMap<Name, AppCells>,
    /// Per-kernel execution histograms, registered on first completion
    /// (the kernel set is only known once tasks run).
    kernels: RefCell<HashMap<Name, HistogramCell>>,
    sched_invocations: CounterCell,
    overhead_ns: [CounterCell; 4],
    faults: [CounterCell; 5],
    retries: CounterCell,
    quarantines: CounterCell,
    degraded: CounterCell,
    aborted: CounterCell,
    survivals: CounterCell,
}

/// Optional per-run metrics recording handle (see the module docs).
#[derive(Clone, Default)]
pub struct ExecMetrics {
    inner: Option<Rc<Inner>>,
}

impl std::fmt::Debug for ExecMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecMetrics").field("enabled", &self.inner.is_some()).finish()
    }
}

impl ExecMetrics {
    /// The no-op handle (what uninstrumented runs use).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Registers this run's cells on `registry`. Cells are
    /// producer-private: each run gets fresh ones, retired into the
    /// family aggregates when the run's handle drops.
    pub fn attach(
        registry: &MetricsRegistry,
        platform: &PlatformConfig,
        instances: &[Arc<AppInstance>],
    ) -> Self {
        let reg = registry;
        let mut per_pe: Vec<Option<PeCells>> = Vec::new();
        for pe in &platform.pes {
            let idx = pe.id.0 as usize;
            if idx >= per_pe.len() {
                per_pe.resize_with(idx + 1, || None);
            }
            per_pe[idx] = Some(PeCells {
                completed: reg.counter("dssoc_tasks_completed", &[("pe", &pe.name)]).cell(),
                exec_ns: reg.histogram("dssoc_task_exec_ns", &[("pe", &pe.name)]).cell(),
            });
        }
        let mut apps: HashMap<Name, AppCells> = HashMap::new();
        for inst in instances {
            let name = Name::from(inst.spec.name.as_str());
            apps.entry(name).or_insert_with(|| AppCells {
                completed: reg.counter("dssoc_apps_completed", &[("app", &inst.spec.name)]).cell(),
                latency_ns: reg
                    .histogram("dssoc_app_latency_ns", &[("app", &inst.spec.name)])
                    .cell(),
            });
        }
        let overhead_ns = [
            OverheadPhase::Monitor,
            OverheadPhase::Update,
            OverheadPhase::Schedule,
            OverheadPhase::Dispatch,
        ]
        .map(|p| reg.counter("dssoc_overhead_ns", &[("phase", p.name())]).cell());
        let faults = ["transient", "permanent", "hang", "watchdog", "exec"]
            .map(|kind| reg.counter("dssoc_faults", &[("kind", kind)]).cell());
        ExecMetrics {
            inner: Some(Rc::new(Inner {
                registry: registry.clone(),
                tasks_ready: reg.counter("dssoc_tasks_ready", &[]).cell(),
                ready_depth: reg.gauge("dssoc_ready_depth", &[]).cell(),
                ready_depth_observed: reg.histogram("dssoc_ready_depth_observed", &[]).cell(),
                task_wait_ns: reg.histogram("dssoc_task_wait_ns", &[]).cell(),
                task_skew_ns: reg.histogram("dssoc_task_skew_ns", &[]).cell(),
                pes_busy: reg.gauge("dssoc_pes_busy", &[]).cell(),
                pes_quarantined: reg.gauge("dssoc_pes_quarantined", &[]).cell(),
                per_pe,
                apps,
                kernels: RefCell::new(HashMap::new()),
                sched_invocations: reg.counter("dssoc_sched_invocations", &[]).cell(),
                overhead_ns,
                faults,
                retries: reg.counter("dssoc_retries", &[]).cell(),
                quarantines: reg.counter("dssoc_quarantines", &[]).cell(),
                degraded: reg.counter("dssoc_degraded_dispatches", &[]).cell(),
                aborted: reg.counter("dssoc_apps_aborted", &[]).cell(),
                survivals: reg.counter("dssoc_fault_survivals", &[]).cell(),
            })),
        }
    }

    /// True when samples are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A task entered the ready list; `depth` is the list length after
    /// the push.
    #[inline]
    pub fn task_ready(&self, depth: usize) {
        if let Some(m) = &self.inner {
            m.tasks_ready.inc();
            m.ready_depth.inc();
            m.ready_depth_observed.record(depth as u64);
        }
    }

    /// `n` tasks left the ready list (dispatched or aborted).
    #[inline]
    pub fn tasks_unready(&self, n: usize) {
        if let Some(m) = &self.inner {
            m.ready_depth.add(-(n as i64));
        }
    }

    /// A PE went busy / returned to idle / was quarantined.
    #[inline]
    pub fn pe_busy(&self) {
        if let Some(m) = &self.inner {
            m.pes_busy.inc();
        }
    }

    #[inline]
    pub fn pe_idle(&self) {
        if let Some(m) = &self.inner {
            m.pes_busy.dec();
        }
    }

    #[inline]
    pub fn pe_quarantined(&self) {
        if let Some(m) = &self.inner {
            m.pes_quarantined.inc();
        }
    }

    /// A task completed: per-PE throughput and execution time, queue
    /// wait, per-kernel execution time, and (threaded engine only, where
    /// a real measured duration exists) modeled-vs-measured skew.
    pub fn task_completed(&self, rec: &TaskRecord) {
        let Some(m) = &self.inner else { return };
        m.task_wait_ns.record(rec.wait().as_nanos() as u64);
        if let Some(Some(pe)) = m.per_pe.get(rec.pe.0 as usize) {
            pe.completed.inc();
            pe.exec_ns.record(rec.modeled.as_nanos() as u64);
        }
        if !rec.kernel.as_str().is_empty() {
            let mut kernels = m.kernels.borrow_mut();
            let cell = kernels.entry(rec.kernel.clone()).or_insert_with(|| {
                m.registry.histogram("dssoc_kernel_exec_ns", &[("kernel", &rec.kernel)]).cell()
            });
            cell.record(rec.modeled.as_nanos() as u64);
        }
        if rec.measured > Duration::ZERO {
            m.task_skew_ns.record(rec.modeled.abs_diff(rec.measured).as_nanos() as u64);
        }
    }

    /// An application completed.
    pub fn app_completed(&self, rec: &AppRecord) {
        let Some(m) = &self.inner else { return };
        if let Some(cells) = m.apps.get(&rec.app) {
            cells.completed.inc();
            cells.latency_ns.record(rec.latency().as_nanos() as u64);
        }
    }

    /// One scheduler invocation.
    #[inline]
    pub fn sched_invocation(&self) {
        if let Some(m) = &self.inner {
            m.sched_invocations.inc();
        }
    }

    /// Overhead charged to a workload-manager phase.
    #[inline]
    pub fn overhead(&self, phase: OverheadPhase, d: Duration) {
        if let Some(m) = &self.inner {
            m.overhead_ns[phase as usize].add(d.as_nanos() as u64);
        }
    }

    /// One injected fault of `kind`.
    pub fn fault(&self, kind: FaultKind) {
        if let Some(m) = &self.inner {
            let idx = match kind {
                FaultKind::Transient => 0,
                FaultKind::Permanent => 1,
                FaultKind::Hang => 2,
                FaultKind::Watchdog => 3,
                FaultKind::Exec => 4,
            };
            m.faults[idx].inc();
        }
    }

    #[inline]
    pub fn retry(&self) {
        if let Some(m) = &self.inner {
            m.retries.inc();
        }
    }

    #[inline]
    pub fn quarantine(&self) {
        if let Some(m) = &self.inner {
            m.quarantines.inc();
        }
    }

    #[inline]
    pub fn degraded(&self) {
        if let Some(m) = &self.inner {
            m.degraded.inc();
        }
    }

    #[inline]
    pub fn abort(&self) {
        if let Some(m) = &self.inner {
            m.aborted.inc();
        }
    }

    #[inline]
    pub fn survival(&self) {
        if let Some(m) = &self.inner {
            m.survivals.inc();
        }
    }

    /// One finished run under `scheduler` (a transient cell: created,
    /// bumped, and immediately retired into the family aggregate).
    pub fn run_completed(&self, scheduler: &str) {
        if let Some(m) = &self.inner {
            m.registry.counter("dssoc_runs", &[("scheduler", scheduler)]).cell().inc();
        }
    }
}
