//! A discrete-event simulator baseline (the DS3/SimGrid class of tools
//! the paper compares against, §III-D).
//!
//! Unlike the emulator, the DES executes nothing: task durations come
//! purely from statistical cost estimates, the clock jumps between
//! events, and — crucially — scheduling itself is free, which is exactly
//! the limitation the paper calls out ("they are inadequate in capturing
//! scheduling overhead and performing functional validation"). An
//! optional fixed per-invocation overhead can be charged to approximate
//! a runtime, which the ablation benches sweep.
//!
//! The DES shares the application model, platform descriptors, cost
//! tables, and the [`Scheduler`] implementations with the threaded
//! engine, so it doubles as a deterministic differential-testing oracle:
//! on a CPU-only platform with a fully populated [`CostTable`] and
//! [`OverheadMode::None`], the threaded engine in
//! [`TimingMode::Modeled`] and this simulator must agree on every task
//! start/finish time.
//!
//! # Performance
//!
//! The DES is the design-space-exploration workhorse: sweep grids run
//! it thousands of times, so the event loop is engineered to do no
//! redundant work per event:
//!
//! * the event queue is a [`CalendarQueue`](crate::calq::CalendarQueue)
//!   of plain-old-data [`CompletionEvent`]s, drained in same-timestamp
//!   batches (`pop_due`) under the engines' shared tie-break `(time,
//!   completions-before-arrivals, task key, seq)` — amortized O(1) per
//!   event against the heap's O(log n), with the rank enforced
//!   structurally by draining completions before the arrival cursor at
//!   each clock value. Arrivals are known up front and drained from a
//!   sorted cursor, so the queue only ever holds in-flight completions
//!   (at most one per PE);
//! * scenario state is struct-of-arrays ([`ScenarioSoa`]): per-spec
//!   dense slabs hold the modeled cost (ns), estimate slot, and interned
//!   runfunc per `(node, PE)` pair — one array probe each, with an
//!   [`INCOMPATIBLE`] sentinel doubling as the compatibility test — and
//!   the DAG in CSR form; per-run instance state (predecessor
//!   countdowns, remaining-task counts) lives in flat arrays indexed by
//!   `inst_base[instance] + node`, so the completion path touches one
//!   cache line per field instead of one fat struct;
//! * every growable buffer lives in a warm per-simulator
//!   [`DesScratch`](crate::arena::DesScratch) arena that resets between
//!   runs without freeing, so warm [`JobRunner`](crate::job::JobRunner)
//!   engines and repeat-iteration sweep cells run the hot loop
//!   allocation-free *across* runs, not just within one;
//! * completed-task facts accumulate in struct-of-arrays columns and are
//!   materialized into [`TaskRecord`]s once after the loop (when neither
//!   tracing nor metrics need them live), instances of one application
//!   share one read-only memory image
//!   ([`Workload::instantiate_shared`]), and the scheduler writes
//!   assignments into a reused buffer ([`Scheduler::schedule_into`]).
//!
//! [`CostTable`]: dssoc_platform::cost::CostTable
//! [`OverheadMode::None`]: crate::engine::OverheadMode::None
//! [`TimingMode::Modeled`]: crate::engine::TimingMode::Modeled

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_appmodel::workload::Workload;
use dssoc_metrics::MetricsRegistry;
use dssoc_platform::cost::{CostModel, CostTable};
use dssoc_platform::pe::{PeId, PlatformConfig};
use dssoc_trace::{EventKind as TraceKind, TraceSink};

use crate::arena::{CompletionEvent, DenseReady, DesScratch, RetryEntry};
use crate::engine::EmuError;
use crate::exec::{
    pe_mask_bit, preflight_compat, register_trace_meta, resolve_unschedulable,
    validate_assignments_with, CompletionSink, ExecTracer, PeSlots, ReadyList,
};
use crate::fault::{FaultPlan, FaultSpec, FaultState};
use crate::intern::{Interner, NameTable};
use crate::job::{build_cost_grid, CompiledScenario, CostSpec, Fingerprint};
use crate::metrics::{ExecMetrics, OverheadPhase};
use crate::sched::{Assignment, EstimateBook, EstimateSlot, PeView, SchedContext, Scheduler};
use crate::soa::{ScenarioSoa, INCOMPATIBLE};
use crate::stats::{AppRecord, DenseTaskLog, EmulationStats, TaskRecord};
use crate::task::ReadyTask;
use crate::task::Task;
use crate::time::SimTime;

/// DES configuration.
#[derive(Clone)]
pub struct DesConfig {
    /// Cost source for task durations (typically a calibrated
    /// [`CostTable`] behind [`CostSpec::Table`]).
    pub cost: CostSpec,
    /// Optional fixed scheduling overhead charged per scheduler
    /// invocation (zero = the classic free-scheduling DES).
    pub overhead_per_invocation: Duration,
    /// Optional event-trace sink. The DES emits the same event schema
    /// as the threaded engine through the shared scheduling core, so
    /// traces from the two engines diff cleanly. (It has no resource
    /// pool or DMA phases, so `pool_*` and `dma` events never appear.)
    pub trace: Option<TraceSink>,
    /// Optional deterministic fault-injection spec. The DES models the
    /// same seeded plan the threaded engine injects, in virtual time —
    /// which is what extends the cross-engine differential tests to
    /// faulty runs.
    pub faults: Option<Arc<FaultSpec>>,
    /// Optional live-metrics registry. The DES publishes the same
    /// metric families as the threaded engine through the shared
    /// scheduling core, so dashboards and the cross-engine metrics
    /// differential test see one schema.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            cost: CostSpec::table(CostTable::new()),
            overhead_per_invocation: Duration::ZERO,
            trace: None,
            faults: None,
            metrics: None,
        }
    }
}

impl std::fmt::Debug for DesConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesConfig")
            .field("cost", &self.cost)
            .field("overhead_per_invocation", &self.overhead_per_invocation)
            .field("traced", &self.trace.is_some())
            .field("faulted", &self.faults.is_some())
            .field("metered", &self.metrics.is_some())
            .finish()
    }
}

/// The discrete-event simulator.
///
/// Holds a warm [`DesScratch`] arena, so a long-lived simulator (a
/// [`JobRunner`](crate::job::JobRunner) engine, a sweep worker) reuses
/// every hot-loop buffer across runs — which is why [`Self::run`] and
/// [`Self::run_compiled`] take `&mut self`.
pub struct DesSimulator {
    platform: Arc<PlatformConfig>,
    config: DesConfig,
    /// The resolved cost model (from `config.cost`).
    cost: Arc<dyn CostModel>,
    /// Cooperative-cancel flag, polled once per event-loop iteration.
    /// Lives on the simulator (not `DesConfig`) so existing config
    /// struct literals stay valid; installed per run by `set_cancel`.
    cancel: Option<Arc<AtomicBool>>,
    /// Warm per-simulator buffers, reset (not freed) between runs.
    scratch: DesScratch,
}

impl DesSimulator {
    /// Builds a simulator for a platform. The platform is `Arc`-shared:
    /// pass an existing `Arc<PlatformConfig>` to avoid a deep clone.
    pub fn new(
        platform: impl Into<Arc<PlatformConfig>>,
        config: DesConfig,
    ) -> Result<Self, EmuError> {
        let platform = platform.into();
        platform.validate().map_err(EmuError::Config)?;
        let cost = config.cost.resolve();
        Ok(DesSimulator { platform, config, cost, cancel: None, scratch: DesScratch::default() })
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// Installs (or, with `None`, removes) a fault-injection spec.
    /// Subsequent [`Self::run`] calls compile it against the platform
    /// and model the resulting plan in virtual time.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultSpec>>) {
        self.config.faults = faults;
    }

    /// Installs (or, with `None`, removes) a trace sink. Subsequent runs
    /// record into the sink's session.
    pub fn set_trace(&mut self, trace: Option<TraceSink>) {
        self.config.trace = trace;
    }

    /// Installs (or, with `None`, removes) a live-metrics registry.
    pub fn set_metrics(&mut self, metrics: Option<MetricsRegistry>) {
        self.config.metrics = metrics;
    }

    /// Installs (or, with `None`, removes) a cooperative-cancel flag.
    /// Both event loops poll it (relaxed) once per clock advance; when
    /// it reads `true` the run aborts with [`EmuError::Canceled`],
    /// leaving the warm scratch arena intact for the next run. Intended
    /// for a supervising owner (the serve daemon) that must reclaim a
    /// worker from a long simulation without tearing the thread down.
    pub fn set_cancel(&mut self, cancel: Option<Arc<AtomicBool>>) {
        self.cancel = cancel;
    }

    /// Simulates a workload to completion under `scheduler`.
    pub fn run(
        &mut self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        library: &AppLibrary,
    ) -> Result<EmulationStats, EmuError> {
        // Compatibility pre-flight, shared with the emulator.
        preflight_compat(&self.platform, workload, library)?;
        // The DES never executes a kernel, so instance memory is never
        // written: instances of one application can share a single
        // initialized image instead of each allocating its own.
        let instances: Vec<Arc<AppInstance>> =
            workload.instantiate_shared(library)?.into_iter().map(Arc::new).collect();

        let mut interner = Interner::new();
        let names = Arc::new(NameTable::build(&instances, &self.platform, &mut interner));

        // The DES observes completions into an estimate book exactly like
        // the emulator, so estimate-driven policies (MET/EFT) see the
        // same context in both engines. Per-(spec, node, PE column)
        // dispatch costs are resolved once into a dense grid, then
        // flattened into SoA slabs; the scheduler contract keeps
        // incompatible (sentinel) combinations from ever dispatching.
        let mut estimates = EstimateBook::new();
        let costs =
            build_cost_grid(&*self.cost, &self.platform, &names, &instances, &mut estimates);
        let soa = ScenarioSoa::build(&instances, &names, &costs, self.platform.pes.len());

        let plan: Option<FaultPlan> = match &self.config.faults {
            Some(spec) => Some(spec.compile(&self.platform).map_err(EmuError::Config)?),
            None => None,
        };

        // No fingerprint: the estimate book was built for this call
        // only, so the warm values-only reset never applies.
        self.run_inner(scheduler, &instances, &names, &soa, &estimates, None, plan.as_ref())
    }

    /// Simulates a precompiled scenario, reusing its shared instance
    /// images, name table, SoA cost slabs, slot-assigned estimate book,
    /// and fault plan — nothing scenario-derived is rebuilt.
    /// Compatibility was preflighted at compile time. Consecutive runs
    /// of the same scenario additionally skip the estimate-book rebuild
    /// (a values-only reset, keyed on the scenario fingerprint).
    pub fn run_compiled(
        &mut self,
        scheduler: &mut dyn Scheduler,
        scenario: &CompiledScenario,
    ) -> Result<EmulationStats, EmuError> {
        self.run_inner(
            scheduler,
            scenario.instances(),
            &scenario.names,
            scenario.soa(),
            scenario.estimates_ref(),
            Some(scenario.fingerprint()),
            scenario.plan(),
        )
    }

    /// Splits the warm scratch out of `self` (so the loop can borrow
    /// `&self` and the arena disjointly) and guarantees it returns.
    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &mut self,
        scheduler: &mut dyn Scheduler,
        instances: &[Arc<AppInstance>],
        names: &Arc<NameTable>,
        soa: &ScenarioSoa,
        est_proto: &EstimateBook,
        est_ident: Option<Fingerprint>,
        plan: Option<&FaultPlan>,
    ) -> Result<EmulationStats, EmuError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        // The fully-dense loop: FRFS-exact policy, bitmask-sized
        // platform, nothing that wants fat per-event bookkeeping — no
        // fault plan, no tracer, no live metrics, no estimate-reading
        // policy. Everything else takes the general loop.
        let dense_loop = scheduler.dense_fifo()
            && !scheduler.uses_estimates()
            && self.platform.pes.len() <= 64
            && plan.is_none()
            && self.config.trace.is_none()
            && self.config.metrics.is_none();
        let result = if dense_loop {
            self.run_loop_dense(scheduler, instances, names, soa, &mut scratch)
        } else {
            self.run_loop(
                scheduler,
                instances,
                names,
                soa,
                est_proto,
                est_ident,
                plan,
                &mut scratch,
            )
        };
        self.scratch = scratch;
        result
    }

    /// The event loop. `names`/`soa`/`est_proto`/`plan` are
    /// scenario-scoped precomputations: [`Self::run`] builds them per
    /// call, [`Self::run_compiled`] hands in the compiled-once shared
    /// ones. All per-run growable state comes from (and returns to) the
    /// scratch arena.
    #[allow(clippy::too_many_arguments)]
    fn run_loop(
        &self,
        scheduler: &mut dyn Scheduler,
        instances: &[Arc<AppInstance>],
        names_arc: &Arc<NameTable>,
        soa: &ScenarioSoa,
        est_proto: &EstimateBook,
        est_ident: Option<Fingerprint>,
        plan: Option<&FaultPlan>,
        s: &mut DesScratch,
    ) -> Result<EmulationStats, EmuError> {
        let names: &NameTable = names_arc;
        s.reset();
        // Estimate-book reuse: during a run only `observe_at` touches the
        // book (slots are resolved at scenario compile), so a book whose
        // slot map came from this same scenario needs only its values
        // restored — a memcpy instead of rebuilding two hash maps.
        if est_ident.is_some() && s.est_src == est_ident {
            s.estimates.reset_values_from(est_proto);
        } else {
            s.estimates.reset_from(est_proto);
        }
        s.est_src = est_ident;

        let DesScratch {
            inst_base,
            remaining_preds,
            remaining_tasks,
            arrival_order,
            done,
            events,
            due,
            retries,
            ready_buf,
            estimates,
            views: view_scratch,
            assignments,
            ..
        } = &mut *s;

        // ---- SoA instance state: flat task ids `inst_base[id] + node`.
        let inst_top = instances.iter().map(|i| i.id.0 as usize + 1).max().unwrap_or(0);
        remaining_tasks.resize(inst_top, 0);
        for inst in instances {
            remaining_tasks[inst.id.0 as usize] = soa.specs[names.spec_index(inst.id)].n_nodes;
        }
        inst_base.resize(inst_top, 0);
        let mut flat_total = 0u32;
        for i in 0..inst_top {
            inst_base[i] = flat_total;
            flat_total += remaining_tasks[i];
        }
        remaining_preds.resize(flat_total as usize, 0);
        for inst in instances {
            let base = inst_base[inst.id.0 as usize] as usize;
            let spec = &soa.specs[names.spec_index(inst.id)];
            remaining_preds[base..base + spec.preds_init.len()].copy_from_slice(&spec.preds_init);
        }
        // The fast-record columns leave with the stats at end of run, so
        // right-size them up front (the run's task count is known).
        done.reserve(flat_total as usize);

        // Arrivals are known up front: sorted once by (time, instance
        // order) and drained by cursor, they never pay queue traffic.
        arrival_order.extend(
            instances
                .iter()
                .enumerate()
                .map(|(i, inst)| (SimTime::from_duration(inst.arrival), i as u32)),
        );
        arrival_order.sort_unstable_by_key(|&(t, i)| (t, i));
        let mut next_arrival = 0usize;
        let mut event_seq = 0u64;

        let metrics = match &self.config.metrics {
            Some(registry) => ExecMetrics::attach(registry, &self.platform, instances),
            None => ExecMetrics::disabled(),
        };
        let mut ready = ReadyList::recycled(std::mem::take(ready_buf));
        ready.set_metrics(metrics.clone());
        // DES PEs have no reservation queues (depth 0); the busy map
        // holds *exact* finish times — the simulator's one luxury over
        // the emulator's estimates.
        let mut slots = PeSlots::new(self.platform.pes.len(), 0);
        slots.set_metrics(metrics.clone());

        // ---- Fault machinery (all empty/None without a fault spec).
        let mut fstate: Option<FaultState> = plan.map(|p| FaultState::new(p.retry.clone()));
        let mut retry_seq = 0u64;
        // The platform key a PE dispatches as, for degraded-dispatch
        // detection (same comparison the threaded engine makes).
        let pe_platform_key =
            |pe: PeId| names.pe_column(pe).map(|col| self.platform.pes[col].platform_key.as_str());

        let mut sink = CompletionSink::new();
        sink.reserve_apps(instances.len());
        let tracer = match &self.config.trace {
            Some(trace_sink) => {
                register_trace_meta(
                    trace_sink,
                    &self.platform,
                    &format!("{} (DES)", scheduler.name()),
                    instances,
                );
                ExecTracer::attach(trace_sink, "des")
            }
            None => ExecTracer::disabled(),
        };
        // With neither tracing nor metrics attached, completions write
        // six integers into SoA columns and the fat records (with their
        // refcounted `Name` clones) are materialized once, after the
        // loop. Live consumers force inline records — same side-effect
        // order as always.
        let fast_records = !metrics.enabled() && !tracer.enabled();
        // FRFS-exact policies take the dense assignment path (the
        // per-round PE mask caps it at 64 PEs — larger platforms fall
        // back to the general scheduler machinery).
        let dense = scheduler.dense_fifo() && self.platform.pes.len() <= 64;
        // The EWMA estimate book is scratch state, never part of the
        // run's output: skip maintaining it when nothing can read it
        // (no estimate-driven policy, no fault plan deriving hang
        // deadlines from estimates).
        let observe = scheduler.uses_estimates() || plan.is_some();
        ready.set_tracer(tracer.clone());
        sink.set_tracer(tracer.clone());
        sink.set_metrics(metrics);
        let mut clock = SimTime::ZERO;
        // Scheduler PE views: recycled allocation, borrowed lifetimes.
        let mut views: Vec<PeView<'_>> = view_scratch.take();

        loop {
            // Cooperative cancel: one relaxed load per clock window is
            // invisible at ~30M events/sec, and a stale read only delays
            // the abort by one window.
            if let Some(flag) = &self.cancel {
                if flag.load(AtomicOrdering::Relaxed) {
                    return Err(EmuError::Canceled);
                }
            }
            // Drain everything due at the current clock first, in one
            // same-window batch. The batch comes out in full `Ord` order,
            // so tie order matches the threaded engine: completions
            // before arrivals, completions in (instance, node, seq)
            // order, arrivals in instantiation order.
            due.clear();
            events.pop_due(clock.0, due);
            for ev in due.iter() {
                let id = InstanceId(ev.inst as u64);
                let node_idx = ev.node as usize;
                let pe = self.platform.pes[ev.col as usize].id;
                // Faulted attempt: no task record, no estimate update,
                // no DAG progress — run the recovery policy instead
                // (identical to the threaded engine's fault branch).
                if let Some(kind) = ev.fault {
                    let plan = plan.expect("fault implies a plan");
                    let state = fstate.as_mut().expect("fault implies fault state");
                    sink.record_fault(ev.time, id.0, node_idx, pe, kind);
                    let action = state.on_fault(plan, id.0, node_idx, pe, kind, ev.time);
                    slots.release(pe);
                    if action.quarantine && !slots.is_failed(pe) {
                        // No PeIdle event — the PE leaves the
                        // schedulable set for good.
                        slots.fail(pe);
                        sink.record_quarantine(ev.time, pe);
                    } else {
                        tracer.emit(ev.time, TraceKind::PeIdle { pe: pe.0 });
                    }
                    if let Some((attempt, release)) = action.retry {
                        sink.record_retry(ev.time, id.0, node_idx, attempt, release);
                        retries.push(RetryEntry {
                            release,
                            seq: retry_seq,
                            task: Task {
                                instance: Arc::clone(&instances[ev.inst as usize]),
                                node_idx,
                            },
                        });
                        retry_seq += 1;
                    } else if action.newly_aborted {
                        sink.record_abort();
                    }
                    continue;
                }
                // DES PEs have no reservation queues, so every
                // completion idles its PE.
                slots.release(pe);
                tracer.emit(ev.time, TraceKind::PeIdle { pe: pe.0 });
                let spec = &soa.specs[names.spec_index(id)];
                let cell = node_idx * soa.stride + ev.col as usize;
                if observe {
                    estimates.observe_at(
                        EstimateSlot::from_raw(spec.est_slot[cell]),
                        Duration::from_nanos(ev.dur_ns),
                    );
                }
                if fast_records {
                    done.push(ev.inst, ev.node, ev.col, ev.ready_at.0, ev.time.0, ev.dur_ns);
                } else {
                    sink.record_task(TaskRecord {
                        instance: id,
                        app: names.app(id).clone(),
                        node: names.node(id, node_idx).clone(),
                        node_idx,
                        kernel: spec.runfunc[cell].clone(),
                        pe,
                        ready_at: ev.ready_at,
                        start: SimTime(ev.time.0 - ev.dur_ns),
                        finish: ev.time,
                        modeled: Duration::from_nanos(ev.dur_ns),
                        measured: Duration::ZERO,
                    });
                }
                // DAG progress: CSR successor walk over flat countdowns.
                let base = inst_base[ev.inst as usize];
                let lo = spec.succ_off[node_idx] as usize;
                let hi = spec.succ_off[node_idx + 1] as usize;
                for &succ in &spec.succ[lo..hi] {
                    let flat = (base + succ) as usize;
                    remaining_preds[flat] -= 1;
                    if remaining_preds[flat] == 0 {
                        ready.push(
                            Task {
                                instance: Arc::clone(&instances[ev.inst as usize]),
                                node_idx: succ as usize,
                            },
                            ev.time,
                        );
                    }
                }
                let left = &mut remaining_tasks[ev.inst as usize];
                *left -= 1;
                if *left == 0 {
                    if fstate.as_ref().is_some_and(|st| st.had_faults(id.0)) {
                        sink.record_survival();
                    }
                    sink.record_app(AppRecord {
                        instance: id,
                        app: names.app(id).clone(),
                        arrival: SimTime::from_duration(instances[ev.inst as usize].arrival),
                        finish: ev.time,
                        task_count: spec.n_nodes as usize,
                    });
                }
            }
            // Release due retries into the ready list, in deterministic
            // (release, seq) order — before arrivals, like the emulator.
            if !retries.is_empty() {
                retries.sort_by_key(|r| (r.release, r.seq));
                let due_n = retries.iter().take_while(|r| r.release <= clock).count();
                for r in retries.drain(..due_n) {
                    ready.push(r.task, r.release);
                }
            }
            while next_arrival < arrival_order.len() && arrival_order[next_arrival].0 <= clock {
                let (at, idx) = arrival_order[next_arrival];
                next_arrival += 1;
                let inst = &instances[idx as usize];
                tracer.emit(at, TraceKind::AppArrive { instance: inst.id.0 });
                ready.push_roots(inst, at);
            }

            // Permanent failures on idle PEs take effect as the clock
            // passes them (busy PEs die through their in-flight
            // attempt's fault decision instead).
            if let Some(plan) = plan {
                for pe in &self.platform.pes {
                    if slots.is_failed(pe.id) || slots.is_busy(pe.id) {
                        continue;
                    }
                    if let Some(tf) = plan.permanent_failure_at(pe.id) {
                        if tf <= clock {
                            slots.fail(pe.id);
                            sink.record_quarantine(tf, pe.id);
                        }
                    }
                }
            }

            // Schedule at the current clock.
            if !ready.is_empty() && slots.any_schedulable() {
                assignments.clear();
                if dense {
                    // Dense FIFO path: the policy declared FRFS
                    // semantics, so the engine computes the identical
                    // assignment set straight off the SoA slabs — no
                    // `PeView` materialization, no virtual dispatch.
                    dense_fifo_assign(
                        soa,
                        names,
                        &slots,
                        &self.platform,
                        ready.pending(),
                        assignments,
                    );
                } else {
                    views.clear();
                    views.extend(self.platform.pes.iter().map(|pe| slots.view(pe, clock)));
                    let ctx = SchedContext { now: clock, estimates: &*estimates };
                    scheduler.schedule_into(ready.pending(), &views, &ctx, assignments);
                }
                sink.note_sched_invocation();
                if tracer.enabled() {
                    // `has_room` is exactly the `idle` the views carry.
                    let candidates = self
                        .platform
                        .pes
                        .iter()
                        .filter(|pe| slots.has_room(pe.id))
                        .fold(0u64, |m, pe| m | pe_mask_bit(pe.id));
                    let chosen = assignments.iter().fold(0u64, |m, a| m | pe_mask_bit(a.pe));
                    tracer.emit(
                        clock,
                        TraceKind::SchedDecision {
                            invocation: sink.sched_invocations,
                            ready: ready.len() as u32,
                            candidates,
                            chosen,
                            assigned: assignments.len() as u32,
                        },
                    );
                }
                let charge = self.config.overhead_per_invocation;
                sink.charge_overhead(OverheadPhase::Schedule, charge);

                // The same contract check the emulator runs, with the
                // platform-key string compare replaced by the SoA
                // sentinel probe. The dense path skips it: those
                // assignments are the engine's own, correct by
                // construction.
                if !dense {
                    validate_assignments_with(
                        scheduler.name(),
                        assignments,
                        ready.pending(),
                        &slots,
                        |rt, pe| match names.pe_column(pe) {
                            Some(col) => {
                                let spec = &soa.specs[names.spec_index(rt.task.instance.id)];
                                spec.cost_ns[rt.task.node_idx * soa.stride + col] != INCOMPATIBLE
                            }
                            None => false,
                        },
                    )?;
                    assignments.sort_unstable_by_key(|a| a.ready_idx);
                }
                for a in assignments.iter() {
                    let rt = &ready.pending()[a.ready_idx];
                    let id = rt.task.instance.id;
                    let node_idx = rt.task.node_idx;
                    let col = names.pe_column(a.pe).expect("known PE");
                    let spec = &soa.specs[names.spec_index(id)];
                    let cell = node_idx * soa.stride + col;
                    let dur_ns = spec.cost_ns[cell];
                    let start = clock + charge;
                    let mut finish = start + Duration::from_nanos(dur_ns);
                    tracer.emit(
                        clock,
                        TraceKind::TaskDispatch {
                            instance: id.0,
                            node: node_idx as u32,
                            pe: a.pe.0,
                        },
                    );
                    tracer.emit(clock, TraceKind::PeBusy { pe: a.pe.0 });
                    let mut fault = None;
                    if let Some(plan) = plan {
                        let state = fstate.as_mut().expect("plan implies fault state");
                        let attempt = state.attempt_of(id.0, node_idx);
                        if attempt > 1 {
                            if let Some(prev) = state.last_fault_pe(id.0, node_idx) {
                                if pe_platform_key(prev) != pe_platform_key(a.pe) {
                                    sink.record_degraded(
                                        clock,
                                        id.0,
                                        node_idx,
                                        a.pe,
                                        state.note_degraded(id.0, node_idx),
                                    );
                                }
                            }
                        }
                        // The *estimate* (not the exact duration) feeds
                        // the hang deadline — the same value the
                        // threaded engine derives at its dispatch, since
                        // both engines observe completions identically.
                        let est = estimates
                            .estimate(&rt.task, &self.platform.pes[col])
                            .unwrap_or(Duration::from_micros(100));
                        if let Some(d) = plan.decide(
                            spec.runfunc[cell].as_str(),
                            a.pe,
                            id.0,
                            node_idx,
                            attempt,
                            start,
                            finish,
                            est,
                        ) {
                            finish = d.time;
                            fault = Some(d.kind);
                        }
                    }
                    slots.occupy(a.pe, finish);
                    events.push(CompletionEvent {
                        time: finish,
                        inst: id.0 as u32,
                        node: node_idx as u32,
                        seq: event_seq,
                        col: col as u32,
                        ready_at: rt.ready_at,
                        dur_ns,
                        fault,
                    });
                    event_seq += 1;
                }
                ready.remove(assignments);
            }

            // Advance to the next event (completion, arrival, or retry
            // release).
            let next_completion = events.peek_time().map(SimTime);
            let next_arr = arrival_order.get(next_arrival).map(|&(t, _)| t);
            let next_retry = retries.iter().map(|r| r.release).min();
            match [next_completion, next_arr, next_retry].into_iter().flatten().min() {
                Some(t) => clock = clock.max(t),
                None => {
                    if ready.is_empty() {
                        break;
                    }
                    // With fault recovery active this stall may mean
                    // "these tasks lost their last compatible PE"
                    // rather than a scheduler bug; let the resolver
                    // abort those apps and re-evaluate.
                    let resolved = match fstate.as_mut() {
                        Some(state) => resolve_unschedulable(
                            &self.platform,
                            &mut slots,
                            &mut ready,
                            state,
                            &mut sink,
                            names,
                        )?,
                        None => false,
                    };
                    if !resolved {
                        return Err(EmuError::Config(format!(
                            "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no events remain",
                            ready.len(),
                            scheduler.name()
                        )));
                    }
                }
            }
        }

        // Return recycled buffers to the arena for the next run.
        view_scratch.put(views);
        *ready_buf = ready.into_buffer();

        let label = format!("{} (DES)", scheduler.name());
        if fast_records {
            // The completion columns ARE the run's task log: hand them
            // (with the scenario's interned names) to the stats, which
            // materializes fat records only if a consumer reads them.
            let dense = DenseTaskLog {
                cols: std::mem::take(done),
                names: Arc::clone(names_arc),
                pes: self.platform.pes.iter().map(|pe| pe.id).collect(),
            };
            Ok(sink.finish_dense(&self.platform, label, instances.to_vec(), dense))
        } else {
            Ok(sink.finish(&self.platform, label, instances.to_vec()))
        }
    }

    /// The dense fast loop: FRFS computed in-engine over an `Arc`-free
    /// ready ring, PE state as one idle bitmask, and completion facts
    /// appended straight to the SoA columns. Taken only when nothing
    /// needs the general machinery (see the gate in [`Self::run_inner`])
    /// — and pinned bit-identical to [`Self::run_loop`] over the same
    /// inputs by the `dense_loop_matches_general_loop` test and the
    /// cross-engine differential suites.
    fn run_loop_dense(
        &self,
        scheduler: &mut dyn Scheduler,
        instances: &[Arc<AppInstance>],
        names_arc: &Arc<NameTable>,
        soa: &ScenarioSoa,
        s: &mut DesScratch,
    ) -> Result<EmulationStats, EmuError> {
        let names: &NameTable = names_arc;
        s.reset();
        let DesScratch {
            inst_base,
            remaining_preds,
            remaining_tasks,
            arrival_order,
            done,
            events,
            due,
            dense_ready,
            ..
        } = &mut *s;

        // ---- SoA instance state, identical to the general prologue.
        let inst_top = instances.iter().map(|i| i.id.0 as usize + 1).max().unwrap_or(0);
        remaining_tasks.resize(inst_top, 0);
        for inst in instances {
            remaining_tasks[inst.id.0 as usize] = soa.specs[names.spec_index(inst.id)].n_nodes;
        }
        inst_base.resize(inst_top, 0);
        let mut flat_total = 0u32;
        for i in 0..inst_top {
            inst_base[i] = flat_total;
            flat_total += remaining_tasks[i];
        }
        remaining_preds.resize(flat_total as usize, 0);
        for inst in instances {
            let base = inst_base[inst.id.0 as usize] as usize;
            let spec = &soa.specs[names.spec_index(inst.id)];
            remaining_preds[base..base + spec.preds_init.len()].copy_from_slice(&spec.preds_init);
        }
        // The columns leave with the stats at end of run, so right-size
        // them up front (the run's task count is known exactly).
        done.reserve(flat_total as usize);

        arrival_order.extend(
            instances
                .iter()
                .enumerate()
                .map(|(i, inst)| (SimTime::from_duration(inst.arrival), i as u32)),
        );
        arrival_order.sort_unstable_by_key(|&(t, i)| (t, i));
        let mut next_arrival = 0usize;
        let mut event_seq = 0u64;

        let mut sink = CompletionSink::new();
        sink.reserve_apps(instances.len());
        let n_pes = self.platform.pes.len();
        // Idle-PE bitmask over platform columns: `free & compat`'s
        // lowest set bit is exactly "first idle compatible PE in
        // descriptor order" — FRFS's placement rule.
        let all_free: u64 = if n_pes >= 64 { u64::MAX } else { (1u64 << n_pes) - 1 };
        let mut free = all_free;
        let charge = self.config.overhead_per_invocation;
        let mut clock = SimTime::ZERO;
        let mut head = 0usize;

        loop {
            if let Some(flag) = &self.cancel {
                if flag.load(AtomicOrdering::Relaxed) {
                    return Err(EmuError::Canceled);
                }
            }
            // Same-window batch drain, same full-`Ord` tie-break order
            // as the general loop.
            due.clear();
            events.pop_due(clock.0, due);
            for ev in due.iter() {
                free |= 1u64 << ev.col;
                let id = InstanceId(ev.inst as u64);
                let node_idx = ev.node as usize;
                let spec = &soa.specs[names.spec_index(id)];
                done.push(ev.inst, ev.node, ev.col, ev.ready_at.0, ev.time.0, ev.dur_ns);
                // DAG progress: CSR successor walk over flat countdowns.
                let base = inst_base[ev.inst as usize];
                let lo = spec.succ_off[node_idx] as usize;
                let hi = spec.succ_off[node_idx + 1] as usize;
                for &succ in &spec.succ[lo..hi] {
                    let flat = (base + succ) as usize;
                    remaining_preds[flat] -= 1;
                    if remaining_preds[flat] == 0 {
                        dense_ready.push(DenseReady {
                            inst: ev.inst,
                            node: succ,
                            ready_ns: ev.time.0,
                        });
                    }
                }
                let left = &mut remaining_tasks[ev.inst as usize];
                *left -= 1;
                if *left == 0 {
                    sink.record_app(AppRecord {
                        instance: id,
                        app: names.app(id).clone(),
                        arrival: SimTime::from_duration(instances[ev.inst as usize].arrival),
                        finish: ev.time,
                        task_count: spec.n_nodes as usize,
                    });
                }
            }
            while next_arrival < arrival_order.len() && arrival_order[next_arrival].0 <= clock {
                let (at, idx) = arrival_order[next_arrival];
                next_arrival += 1;
                let inst = &instances[idx as usize];
                let spec = &soa.specs[names.spec_index(inst.id)];
                let iid = inst.id.0 as u32;
                for &r in &spec.roots {
                    dense_ready.push(DenseReady { inst: iid, node: r, ready_ns: at.0 });
                }
            }

            // Schedule at the current clock: strict FIFO, stop at the
            // first head task with no idle compatible PE.
            if head < dense_ready.len() && free != 0 {
                sink.note_sched_invocation();
                if !charge.is_zero() {
                    // With metrics off (guaranteed on this path) a zero
                    // charge is a no-op — skip the call entirely.
                    sink.charge_overhead(OverheadPhase::Schedule, charge);
                }
                while head < dense_ready.len() {
                    let rt = dense_ready[head];
                    let spec = &soa.specs[names.spec_index(InstanceId(rt.inst as u64))];
                    let m = spec.compat[rt.node as usize] & free;
                    if m == 0 {
                        break;
                    }
                    let col = m.trailing_zeros() as usize;
                    free &= !(1u64 << col);
                    let dur_ns = spec.cost_ns[rt.node as usize * soa.stride + col];
                    let finish = clock + charge + Duration::from_nanos(dur_ns);
                    events.push(CompletionEvent {
                        time: finish,
                        inst: rt.inst,
                        node: rt.node,
                        seq: event_seq,
                        col: col as u32,
                        ready_at: SimTime(rt.ready_ns),
                        dur_ns,
                        fault: None,
                    });
                    event_seq += 1;
                    head += 1;
                }
                // Reclaim the consumed prefix once it dominates the
                // ring (mirrors `ReadyList::remove`'s policy).
                if head >= 64 && head * 2 >= dense_ready.len() {
                    dense_ready.drain(..head);
                    head = 0;
                }
            }

            // Advance to the next event (completion or arrival).
            let next_completion = events.peek_time().map(SimTime);
            let next_arr = arrival_order.get(next_arrival).map(|&(t, _)| t);
            match [next_completion, next_arr].into_iter().flatten().min() {
                Some(t) => clock = clock.max(t),
                None => {
                    if head == dense_ready.len() {
                        break;
                    }
                    return Err(EmuError::Config(format!(
                        "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no events remain",
                        dense_ready.len() - head,
                        scheduler.name()
                    )));
                }
            }
        }

        let dense = DenseTaskLog {
            cols: std::mem::take(done),
            names: Arc::clone(names_arc),
            pes: self.platform.pes.iter().map(|pe| pe.id).collect(),
        };
        Ok(sink.finish_dense(
            &self.platform,
            format!("{} (DES)", scheduler.name()),
            instances.to_vec(),
            dense,
        ))
    }
}

/// FRFS computed inside the engine: strict FIFO over the pending queue,
/// first idle compatible PE in descriptor order, stop at the first head
/// that cannot start. Byte-for-byte the assignment set
/// [`FrfsScheduler::schedule_into`](crate::sched::FrfsScheduler) would
/// return — `slots.has_room` is exactly the `idle` flag the views would
/// carry, and the SoA sentinel probe is exactly `task.supports(key)`
/// (pinned by `soa_matches_grid` and the differential suites). Output is
/// already in `ready_idx` order and engine-valid, so the caller skips
/// both the sort and the contract check.
fn dense_fifo_assign(
    soa: &ScenarioSoa,
    names: &NameTable,
    slots: &PeSlots,
    platform: &PlatformConfig,
    pending: &[ReadyTask],
    out: &mut Vec<Assignment>,
) {
    let mut taken: u64 = 0;
    for (i, rt) in pending.iter().enumerate() {
        let spec = &soa.specs[names.spec_index(rt.task.instance.id)];
        let row = rt.task.node_idx * soa.stride;
        let mut found = false;
        for (col, pe) in platform.pes.iter().enumerate() {
            if taken & (1 << col) != 0 || !slots.has_room(pe.id) {
                continue;
            }
            if spec.cost_ns[row + col] != INCOMPATIBLE {
                taken |= 1 << col;
                out.push(Assignment { ready_idx: i, pe: pe.id });
                found = true;
                break;
            }
        }
        if !found {
            break;
        }
    }
}
