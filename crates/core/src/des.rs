//! A discrete-event simulator baseline (the DS3/SimGrid class of tools
//! the paper compares against, §III-D).
//!
//! Unlike the emulator, the DES executes nothing: task durations come
//! purely from statistical cost estimates, the clock jumps between
//! events, and — crucially — scheduling itself is free, which is exactly
//! the limitation the paper calls out ("they are inadequate in capturing
//! scheduling overhead and performing functional validation"). An
//! optional fixed per-invocation overhead can be charged to approximate
//! a runtime, which the ablation benches sweep.
//!
//! The DES shares the application model, platform descriptors, cost
//! tables, and the [`Scheduler`] implementations with the threaded
//! engine, so it doubles as a deterministic differential-testing oracle:
//! on a CPU-only platform with a fully populated [`CostTable`] and
//! [`OverheadMode::None`], the threaded engine in
//! [`TimingMode::Modeled`] and this simulator must agree on every task
//! start/finish time.
//!
//! [`CostTable`]: dssoc_platform::cost::CostTable
//! [`OverheadMode::None`]: crate::engine::OverheadMode::None
//! [`TimingMode::Modeled`]: crate::engine::TimingMode::Modeled

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_appmodel::workload::Workload;
use dssoc_platform::cost::{CostModel, CostTable};
use dssoc_platform::pe::{PeDescriptor, PeId, PlatformConfig};

use crate::engine::EmuError;
use crate::sched::{EstimateBook, PeView, SchedContext, Scheduler};
use crate::stats::{AppRecord, EmulationStats, OverheadBreakdown, TaskRecord};
use crate::task::{ReadyTask, Task};
use crate::time::SimTime;

/// DES configuration.
pub struct DesConfig {
    /// Cost source for task durations (typically a calibrated
    /// [`CostTable`]).
    pub cost: Arc<dyn CostModel>,
    /// Optional fixed scheduling overhead charged per scheduler
    /// invocation (zero = the classic free-scheduling DES).
    pub overhead_per_invocation: Duration,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig { cost: Arc::new(CostTable::new()), overhead_per_invocation: Duration::ZERO }
    }
}

/// The discrete-event simulator.
pub struct DesSimulator {
    platform: PlatformConfig,
    config: DesConfig,
}

#[derive(Debug)]
enum EventKind {
    Arrival(usize),                 // index into instances
    Completion { pe: PeId, ready_at: SimTime },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
    task: Option<Task>,
}

impl DesSimulator {
    /// Builds a simulator for a platform.
    pub fn new(platform: PlatformConfig, config: DesConfig) -> Result<Self, EmuError> {
        platform.validate().map_err(EmuError::Config)?;
        Ok(DesSimulator { platform, config })
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// Duration the DES charges for `task` on `pe`: cost model first,
    /// then the JSON per-platform estimate, then a speed-scaled default —
    /// the same priority the estimate book uses.
    fn duration_of(&self, task: &Task, pe: &PeDescriptor) -> Duration {
        let platform = task.node().platform(&pe.platform_key).expect("compat checked");
        if let Some(d) = self.config.cost.task_duration(&platform.runfunc, pe, Duration::ZERO) {
            return d;
        }
        if let Some(d) = platform.mean_exec {
            return d;
        }
        Duration::from_secs_f64(100e-6 / pe.speed())
    }

    /// Simulates a workload to completion under `scheduler`.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        library: &AppLibrary,
    ) -> Result<EmulationStats, EmuError> {
        // Compatibility pre-flight, as in the emulator.
        for entry in &workload.entries {
            let spec = library.get(&entry.app_name)?;
            for node in &spec.nodes {
                if !self.platform.pes.iter().any(|pe| node.supports(&pe.platform_key)) {
                    return Err(EmuError::Config(format!(
                        "node '{}' of app '{}' supports none of the platform's PE types",
                        node.name, entry.app_name
                    )));
                }
            }
        }
        let instances: Vec<Arc<AppInstance>> =
            workload.instantiate(library)?.into_iter().map(Arc::new).collect();

        struct InstState {
            remaining_preds: Vec<usize>,
            remaining_tasks: usize,
            arrival: SimTime,
        }
        let mut inst_state: HashMap<InstanceId, InstState> = instances
            .iter()
            .map(|inst| {
                (
                    inst.id,
                    InstState {
                        remaining_preds: inst.spec.nodes.iter().map(|n| n.predecessors.len()).collect(),
                        remaining_tasks: inst.spec.nodes.len(),
                        arrival: SimTime::from_duration(inst.arrival),
                    },
                )
            })
            .collect();

        let mut events: Vec<Event> = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| Event {
                time: SimTime::from_duration(inst.arrival),
                seq: i as u64,
                kind: EventKind::Arrival(i),
                task: None,
            })
            .collect();
        let mut event_seq = instances.len() as u64;

        let mut ready: Vec<ReadyTask> = Vec::new();
        let mut seq = 0u64;
        let mut busy: HashMap<PeId, SimTime> = HashMap::new(); // PE -> exact finish
        let estimates = EstimateBook::new();

        let mut task_records = Vec::new();
        let mut app_records = Vec::new();
        let mut pe_busy: HashMap<PeId, Duration> = HashMap::new();
        let mut sched_invocations = 0u64;
        let mut overhead = OverheadBreakdown::default();
        let mut clock = SimTime::ZERO;

        loop {
            // Drain everything due at the current clock first. Tie order
            // matches the threaded engine: completions before arrivals,
            // completions in (instance, node) order, arrivals in
            // instantiation order.
            events.sort_by_key(|e| {
                let (rank, key) = match &e.kind {
                    EventKind::Completion { .. } => {
                        let t = e.task.as_ref().expect("completion carries its task");
                        (0u8, t.key())
                    }
                    EventKind::Arrival(i) => (1u8, (InstanceId(*i as u64), 0usize)),
                };
                (e.time, rank, key, e.seq)
            });
            while let Some(pos) = events.iter().position(|e| e.time <= clock) {
                let ev = events.remove(pos);
                match ev.kind {
                    EventKind::Arrival(i) => {
                        let inst = &instances[i];
                        for &r in &inst.spec.roots {
                            ready.push(ReadyTask {
                                task: Task { instance: Arc::clone(inst), node_idx: r },
                                ready_at: ev.time,
                                seq,
                            });
                            seq += 1;
                        }
                    }
                    EventKind::Completion { pe, ready_at } => {
                        busy.remove(&pe);
                        let task = ev.task.expect("completion carries its task");
                        let node = task.node();
                        let desc = self.platform.pe(pe).expect("known PE");
                        let dur = self.duration_of(&task, desc);
                        *pe_busy.entry(pe).or_default() += dur;
                        task_records.push(TaskRecord {
                            instance: task.instance.id,
                            app: task.app_name().to_string(),
                            node: node.name.clone(),
                            kernel: node
                                .platform(&desc.platform_key)
                                .map(|p| p.runfunc.clone())
                                .unwrap_or_default(),
                            pe,
                            ready_at,
                            start: SimTime(ev.time.0 - dur.as_nanos() as u64),
                            finish: ev.time,
                            modeled: dur,
                            measured: Duration::ZERO,
                        });
                        let st = inst_state.get_mut(&task.instance.id).expect("known instance");
                        for &s in &node.successors {
                            st.remaining_preds[s] -= 1;
                            if st.remaining_preds[s] == 0 {
                                ready.push(ReadyTask {
                                    task: Task { instance: Arc::clone(&task.instance), node_idx: s },
                                    ready_at: ev.time,
                                    seq,
                                });
                                seq += 1;
                            }
                        }
                        st.remaining_tasks -= 1;
                        if st.remaining_tasks == 0 {
                            app_records.push(AppRecord {
                                instance: task.instance.id,
                                app: task.app_name().to_string(),
                                arrival: st.arrival,
                                finish: ev.time,
                                task_count: task.instance.spec.nodes.len(),
                            });
                        }
                    }
                }
            }

            // Schedule at the current clock.
            if !ready.is_empty() && busy.len() < self.platform.pes.len() {
                let views: Vec<PeView<'_>> = self
                    .platform
                    .pes
                    .iter()
                    .map(|pe| {
                        let b = busy.get(&pe.id).copied();
                        PeView { pe, idle: b.is_none(), available_at: b.unwrap_or(clock) }
                    })
                    .collect();
                let ctx = SchedContext { now: clock, estimates: &estimates };
                let mut assignments = scheduler.schedule(&ready, &views, &ctx);
                sched_invocations += 1;
                let charge = self.config.overhead_per_invocation;
                overhead.schedule += charge;

                assignments.sort_by_key(|a| std::cmp::Reverse(a.ready_idx));
                let mut dispatched_idx: Vec<usize> = Vec::with_capacity(assignments.len());
                let mut dispatched = false;
                for a in assignments {
                    if a.ready_idx >= ready.len()
                        || busy.contains_key(&a.pe)
                        || dispatched_idx.contains(&a.ready_idx)
                    {
                        return Err(EmuError::Config(format!(
                            "scheduler '{}' violated the assignment contract in DES",
                            scheduler.name()
                        )));
                    }
                    dispatched_idx.push(a.ready_idx);
                    let rt = ready[a.ready_idx].clone();
                    let desc = self.platform.pe(a.pe).expect("known PE");
                    if !rt.task.supports(&desc.platform_key) {
                        return Err(EmuError::Config(format!(
                            "scheduler '{}' assigned an incompatible task in DES",
                            scheduler.name()
                        )));
                    }
                    let dur = self.duration_of(&rt.task, desc);
                    let finish = clock + charge + dur;
                    busy.insert(a.pe, finish);
                    events.push(Event {
                        time: finish,
                        seq: event_seq,
                        kind: EventKind::Completion { pe: a.pe, ready_at: rt.ready_at },
                        task: Some(rt.task),
                    });
                    event_seq += 1;
                    dispatched = true;
                }
                if dispatched {
                    let mut idx = 0;
                    ready.retain(|_| {
                        let keep = !dispatched_idx.contains(&idx);
                        idx += 1;
                        keep
                    });
                }
            }

            // Advance to the next event.
            match events.iter().map(|e| e.time).min() {
                Some(t) => clock = clock.max(t),
                None => {
                    if ready.is_empty() {
                        break;
                    }
                    return Err(EmuError::Config(format!(
                        "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no events remain",
                        ready.len(),
                        scheduler.name()
                    )));
                }
            }
        }

        let makespan = app_records
            .iter()
            .map(|a: &AppRecord| a.finish)
            .chain(task_records.iter().map(|t: &TaskRecord| t.finish))
            .max()
            .unwrap_or(SimTime::ZERO)
            .as_duration();

        Ok(EmulationStats {
            platform: self.platform.name.clone(),
            scheduler: format!("{} (DES)", scheduler.name()),
            makespan,
            tasks: task_records,
            apps: app_records,
            pe_busy: pe_busy.into_iter().collect(),
            pe_names: self.platform.pes.iter().map(|pe| (pe.id, pe.name.clone())).collect(),
            sched_invocations,
            overhead,
            instances,
        })
    }
}
