//! A discrete-event simulator baseline (the DS3/SimGrid class of tools
//! the paper compares against, §III-D).
//!
//! Unlike the emulator, the DES executes nothing: task durations come
//! purely from statistical cost estimates, the clock jumps between
//! events, and — crucially — scheduling itself is free, which is exactly
//! the limitation the paper calls out ("they are inadequate in capturing
//! scheduling overhead and performing functional validation"). An
//! optional fixed per-invocation overhead can be charged to approximate
//! a runtime, which the ablation benches sweep.
//!
//! The DES shares the application model, platform descriptors, cost
//! tables, and the [`Scheduler`] implementations with the threaded
//! engine, so it doubles as a deterministic differential-testing oracle:
//! on a CPU-only platform with a fully populated [`CostTable`] and
//! [`OverheadMode::None`], the threaded engine in
//! [`TimingMode::Modeled`] and this simulator must agree on every task
//! start/finish time.
//!
//! # Performance
//!
//! The DES is the design-space-exploration workhorse: sweep grids run
//! it thousands of times, so the event loop is engineered to do no
//! redundant work per event:
//!
//! * the event queue is a [`BinaryHeap`] ordered by the engines' shared
//!   tie-break `(time, completions-before-arrivals, task key, seq)` —
//!   O(log n) per event instead of re-sorting the whole queue every
//!   iteration. Arrivals are known up front and drained from a sorted
//!   cursor instead of the heap, so the heap only ever holds the
//!   in-flight completions (at most one per PE);
//! * every `(spec, node, PE)` dispatch cost — the modeled duration and
//!   the estimate-book slot its observation lands in — is resolved once
//!   at run start into a dense table, so dispatch and completion do
//!   vector indexing instead of platform-key matches and string-keyed
//!   cost lookups;
//! * a task's duration is computed once at dispatch and carried in its
//!   completion event (together with its interned runfunc [`Name`]),
//!   so completion handling recomputes nothing;
//! * all record names come from a per-run [`NameTable`], instances of
//!   one application share one read-only memory image
//!   ([`Workload::instantiate_shared`]), and the scheduler's PE-view
//!   vector is a reused scratch buffer — the steady-state loop
//!   allocates only for growth.
//!
//! [`CostTable`]: dssoc_platform::cost::CostTable
//! [`OverheadMode::None`]: crate::engine::OverheadMode::None
//! [`TimingMode::Modeled`]: crate::engine::TimingMode::Modeled

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_appmodel::workload::Workload;
use dssoc_metrics::MetricsRegistry;
use dssoc_platform::cost::{CostModel, CostTable};
use dssoc_platform::pe::{PeId, PlatformConfig};
use dssoc_trace::{EventKind as TraceKind, FaultKind, TraceSink};

use crate::engine::EmuError;
use crate::exec::{
    pe_mask_bit, preflight_compat, register_trace_meta, resolve_unschedulable,
    validate_assignments, CompletionSink, ExecTracer, InstanceTracker, PeSlots, ReadyList,
};
use crate::fault::{FaultPlan, FaultSpec, FaultState};
use crate::intern::{Interner, Name, NameTable};
use crate::job::{build_cost_grid, CompiledScenario, CostGrid, CostSpec};
use crate::metrics::{ExecMetrics, OverheadPhase};
use crate::sched::{EstimateBook, PeView, SchedContext, Scheduler};
use crate::stats::{EmulationStats, TaskRecord};
use crate::task::Task;
use crate::time::SimTime;

/// DES configuration.
#[derive(Clone)]
pub struct DesConfig {
    /// Cost source for task durations (typically a calibrated
    /// [`CostTable`] behind [`CostSpec::Table`]).
    pub cost: CostSpec,
    /// Optional fixed scheduling overhead charged per scheduler
    /// invocation (zero = the classic free-scheduling DES).
    pub overhead_per_invocation: Duration,
    /// Optional event-trace sink. The DES emits the same event schema
    /// as the threaded engine through the shared scheduling core, so
    /// traces from the two engines diff cleanly. (It has no resource
    /// pool or DMA phases, so `pool_*` and `dma` events never appear.)
    pub trace: Option<TraceSink>,
    /// Optional deterministic fault-injection spec. The DES models the
    /// same seeded plan the threaded engine injects, in virtual time —
    /// which is what extends the cross-engine differential tests to
    /// faulty runs.
    pub faults: Option<Arc<FaultSpec>>,
    /// Optional live-metrics registry. The DES publishes the same
    /// metric families as the threaded engine through the shared
    /// scheduling core, so dashboards and the cross-engine metrics
    /// differential test see one schema.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            cost: CostSpec::table(CostTable::new()),
            overhead_per_invocation: Duration::ZERO,
            trace: None,
            faults: None,
            metrics: None,
        }
    }
}

impl std::fmt::Debug for DesConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesConfig")
            .field("cost", &self.cost)
            .field("overhead_per_invocation", &self.overhead_per_invocation)
            .field("traced", &self.trace.is_some())
            .field("faulted", &self.faults.is_some())
            .field("metered", &self.metrics.is_some())
            .finish()
    }
}

/// The discrete-event simulator.
pub struct DesSimulator {
    platform: Arc<PlatformConfig>,
    config: DesConfig,
    /// The resolved cost model (from `config.cost`).
    cost: Arc<dyn CostModel>,
}

/// One queued completion event: a dispatched task finishing.
///
/// Ordered by the engines' shared tie-break: time, then task key
/// `(instance, node)`, then dispatch sequence. Arrivals never enter the
/// heap (they are known up front and drained from a sorted cursor), so
/// the heap only ever holds the in-flight completions — at most one per
/// PE — and every queued event is a completion: the old
/// completions-before-arrivals rank is enforced structurally by
/// draining the heap before the arrival cursor at each clock value.
///
/// Everything completion handling needs — the duration charged at
/// dispatch and the runfunc that "executed" — is carried here, so it is
/// never recomputed. The task itself is the event key: `(instance,
/// node)` indexes the dense instance vector, so the event carries no
/// `Arc`.
struct Event {
    time: SimTime,
    key: (InstanceId, usize),
    seq: u64,
    pe: PeId,
    ready_at: SimTime,
    dur: Duration,
    runfunc: Name,
    /// `Some` when the fault plan rewrote this attempt's outcome at
    /// dispatch: `time` is then the fault manifestation time.
    fault: Option<FaultKind>,
}

/// A faulted task waiting out its retry backoff; `seq` breaks release
/// ties in fault order (the same rule the threaded engine applies).
struct RetryEntry {
    release: SimTime,
    seq: u64,
    task: Task,
}

impl Event {
    fn order_key(&self) -> (SimTime, (InstanceId, usize), u64) {
        (self.time, self.key, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.order_key() == other.order_key()
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl DesSimulator {
    /// Builds a simulator for a platform. The platform is `Arc`-shared:
    /// pass an existing `Arc<PlatformConfig>` to avoid a deep clone.
    pub fn new(
        platform: impl Into<Arc<PlatformConfig>>,
        config: DesConfig,
    ) -> Result<Self, EmuError> {
        let platform = platform.into();
        platform.validate().map_err(EmuError::Config)?;
        let cost = config.cost.resolve();
        Ok(DesSimulator { platform, config, cost })
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// Installs (or, with `None`, removes) a fault-injection spec.
    /// Subsequent [`Self::run`] calls compile it against the platform
    /// and model the resulting plan in virtual time.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultSpec>>) {
        self.config.faults = faults;
    }

    /// Installs (or, with `None`, removes) a trace sink. Subsequent runs
    /// record into the sink's session.
    pub fn set_trace(&mut self, trace: Option<TraceSink>) {
        self.config.trace = trace;
    }

    /// Installs (or, with `None`, removes) a live-metrics registry.
    pub fn set_metrics(&mut self, metrics: Option<MetricsRegistry>) {
        self.config.metrics = metrics;
    }

    /// Simulates a workload to completion under `scheduler`.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        library: &AppLibrary,
    ) -> Result<EmulationStats, EmuError> {
        // Compatibility pre-flight, shared with the emulator.
        preflight_compat(&self.platform, workload, library)?;
        // The DES never executes a kernel, so instance memory is never
        // written: instances of one application can share a single
        // initialized image instead of each allocating its own.
        let instances: Vec<Arc<AppInstance>> =
            workload.instantiate_shared(library)?.into_iter().map(Arc::new).collect();

        let mut interner = Interner::new();
        let names = NameTable::build(&instances, &self.platform, &mut interner);

        // The DES observes completions into an estimate book exactly like
        // the emulator, so estimate-driven policies (MET/EFT) see the
        // same context in both engines. Per-(spec, node, PE column)
        // dispatch costs are resolved once into a dense grid (see
        // [`build_cost_grid`]); the scheduler contract keeps incompatible
        // (`None`) combinations from ever being dispatched.
        let mut estimates = EstimateBook::new();
        let costs =
            build_cost_grid(&*self.cost, &self.platform, &names, &instances, &mut estimates);

        let plan: Option<FaultPlan> = match &self.config.faults {
            Some(spec) => Some(spec.compile(&self.platform).map_err(EmuError::Config)?),
            None => None,
        };

        self.run_inner(scheduler, instances, &names, &costs, estimates, plan.as_ref())
    }

    /// Simulates a precompiled scenario, reusing its shared instance
    /// images, name table, cost grid, slot-assigned estimate book, and
    /// fault plan — nothing scenario-derived is rebuilt. Compatibility
    /// was preflighted at compile time.
    pub fn run_compiled(
        &self,
        scheduler: &mut dyn Scheduler,
        scenario: &CompiledScenario,
    ) -> Result<EmulationStats, EmuError> {
        self.run_inner(
            scheduler,
            scenario.instances().to_vec(),
            scenario.names(),
            scenario.grid(),
            scenario.estimates_prototype(),
            scenario.plan(),
        )
    }

    /// The event loop. `names`/`costs`/`estimates`/`plan` are
    /// scenario-scoped precomputations: [`Self::run`] builds them per
    /// call, [`Self::run_compiled`] hands in the shared ones.
    fn run_inner(
        &self,
        scheduler: &mut dyn Scheduler,
        instances: Vec<Arc<AppInstance>>,
        names: &NameTable,
        costs: &CostGrid,
        mut estimates: EstimateBook,
        plan: Option<&FaultPlan>,
    ) -> Result<EmulationStats, EmuError> {
        let mut tracker = InstanceTracker::new(&instances, names);

        // Arrivals are known up front: sorted once by (time, instance
        // order) and drained by cursor, they never pay heap traffic.
        let mut arrival_order: Vec<(SimTime, u32)> = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (SimTime::from_duration(inst.arrival), i as u32))
            .collect();
        arrival_order.sort_unstable_by_key(|&(t, i)| (t, i));
        let mut next_arrival = 0usize;

        // Min-heap of in-flight completions on the shared tie-break.
        // Draining due events by popping the minimum while its time is
        // <= the clock reproduces the sorted-queue order exactly: in a
        // queue sorted ascending by the same key, the first event with
        // `time <= clock` is always the head (the global minimum).
        let mut events: BinaryHeap<Reverse<Event>> =
            BinaryHeap::with_capacity(self.platform.pes.len() + 1);
        let mut event_seq = 0u64;

        let metrics = match &self.config.metrics {
            Some(registry) => ExecMetrics::attach(registry, &self.platform, &instances),
            None => ExecMetrics::disabled(),
        };
        let mut ready = ReadyList::new();
        ready.set_metrics(metrics.clone());
        // DES PEs have no reservation queues (depth 0); the busy map
        // holds *exact* finish times — the simulator's one luxury over
        // the emulator's estimates.
        let mut slots = PeSlots::new(self.platform.pes.len(), 0);
        slots.set_metrics(metrics.clone());

        // ---- Fault machinery (all empty/None without a fault spec).
        let mut fstate: Option<FaultState> = plan.map(|p| FaultState::new(p.retry.clone()));
        let mut retries: Vec<RetryEntry> = Vec::new();
        let mut retry_seq = 0u64;
        // The platform key a PE dispatches as, for degraded-dispatch
        // detection (same comparison the threaded engine makes).
        let pe_platform_key =
            |pe: PeId| names.pe_column(pe).map(|col| self.platform.pes[col].platform_key.as_str());

        let mut sink = CompletionSink::new();
        let tracer = match &self.config.trace {
            Some(trace_sink) => {
                register_trace_meta(
                    trace_sink,
                    &self.platform,
                    &format!("{} (DES)", scheduler.name()),
                    &instances,
                );
                ExecTracer::attach(trace_sink, "des")
            }
            None => ExecTracer::disabled(),
        };
        ready.set_tracer(tracer.clone());
        sink.set_tracer(tracer.clone());
        sink.set_metrics(metrics);
        let mut clock = SimTime::ZERO;
        // Scratch buffer for the scheduler's per-invocation PE views.
        let mut views: Vec<PeView<'_>> = Vec::with_capacity(self.platform.pes.len());

        loop {
            // Drain everything due at the current clock first. Tie order
            // matches the threaded engine: completions before arrivals,
            // completions in (instance, node) order, arrivals in
            // instantiation order.
            while events.peek().is_some_and(|Reverse(e)| e.time <= clock) {
                let Reverse(ev) = events.pop().expect("peeked");
                let (id, node_idx) = ev.key;
                // Faulted attempt: no task record, no estimate update,
                // no DAG progress — run the recovery policy instead
                // (identical to the threaded engine's fault branch).
                if let Some(kind) = ev.fault {
                    let plan = plan.expect("fault implies a plan");
                    let state = fstate.as_mut().expect("fault implies fault state");
                    sink.record_fault(ev.time, id.0, node_idx, ev.pe, kind);
                    let action = state.on_fault(plan, id.0, node_idx, ev.pe, kind, ev.time);
                    slots.release(ev.pe);
                    if action.quarantine && !slots.is_failed(ev.pe) {
                        // No PeIdle event — the PE leaves the
                        // schedulable set for good.
                        slots.fail(ev.pe);
                        sink.record_quarantine(ev.time, ev.pe);
                    } else {
                        tracer.emit(ev.time, TraceKind::PeIdle { pe: ev.pe.0 });
                    }
                    if let Some((attempt, release)) = action.retry {
                        sink.record_retry(ev.time, id.0, node_idx, attempt, release);
                        retries.push(RetryEntry {
                            release,
                            seq: retry_seq,
                            task: Task {
                                instance: Arc::clone(&instances[id.0 as usize]),
                                node_idx,
                            },
                        });
                        retry_seq += 1;
                    } else if action.newly_aborted {
                        sink.record_abort();
                    }
                    continue;
                }
                // DES PEs have no reservation queues, so every
                // completion idles its PE.
                slots.release(ev.pe);
                tracer.emit(ev.time, TraceKind::PeIdle { pe: ev.pe.0 });
                let col = names.pe_column(ev.pe).expect("known PE");
                let (_, est_slot) =
                    costs[names.spec_index(id)][node_idx][col].expect("compat checked");
                estimates.observe_at(est_slot, ev.dur);
                sink.record_task(TaskRecord {
                    instance: id,
                    app: names.app(id).clone(),
                    node: names.node(id, node_idx).clone(),
                    node_idx,
                    kernel: ev.runfunc,
                    pe: ev.pe,
                    ready_at: ev.ready_at,
                    start: SimTime(ev.time.0 - ev.dur.as_nanos() as u64),
                    finish: ev.time,
                    modeled: ev.dur,
                    measured: Duration::ZERO,
                });
                if let Some(rec) =
                    tracker.complete(&instances[id.0 as usize], node_idx, ev.time, &mut ready)
                {
                    if fstate.as_ref().is_some_and(|s| s.had_faults(id.0)) {
                        sink.record_survival();
                    }
                    sink.record_app(rec);
                }
            }
            // Release due retries into the ready list, in deterministic
            // (release, seq) order — before arrivals, like the emulator.
            if !retries.is_empty() {
                retries.sort_by_key(|r| (r.release, r.seq));
                while retries.first().is_some_and(|r| r.release <= clock) {
                    let r = retries.remove(0);
                    ready.push(r.task, r.release);
                }
            }
            while next_arrival < arrival_order.len() && arrival_order[next_arrival].0 <= clock {
                let (at, idx) = arrival_order[next_arrival];
                next_arrival += 1;
                let inst = &instances[idx as usize];
                tracer.emit(at, TraceKind::AppArrive { instance: inst.id.0 });
                ready.push_roots(inst, at);
            }

            // Permanent failures on idle PEs take effect as the clock
            // passes them (busy PEs die through their in-flight
            // attempt's fault decision instead).
            if let Some(plan) = plan {
                for pe in &self.platform.pes {
                    if slots.is_failed(pe.id) || slots.is_busy(pe.id) {
                        continue;
                    }
                    if let Some(tf) = plan.permanent_failure_at(pe.id) {
                        if tf <= clock {
                            slots.fail(pe.id);
                            sink.record_quarantine(tf, pe.id);
                        }
                    }
                }
            }

            // Schedule at the current clock.
            if !ready.is_empty() && slots.any_schedulable() {
                views.clear();
                views.extend(self.platform.pes.iter().map(|pe| slots.view(pe, clock)));
                let ctx = SchedContext { now: clock, estimates: &estimates };
                let mut assignments = scheduler.schedule(ready.pending(), &views, &ctx);
                sink.note_sched_invocation();
                if tracer.enabled() {
                    let candidates =
                        views.iter().filter(|v| v.idle).fold(0u64, |m, v| m | pe_mask_bit(v.pe.id));
                    let chosen = assignments.iter().fold(0u64, |m, a| m | pe_mask_bit(a.pe));
                    tracer.emit(
                        clock,
                        TraceKind::SchedDecision {
                            invocation: sink.sched_invocations,
                            ready: ready.len() as u32,
                            candidates,
                            chosen,
                            assigned: assignments.len() as u32,
                        },
                    );
                }
                let charge = self.config.overhead_per_invocation;
                sink.charge_overhead(OverheadPhase::Schedule, charge);

                // The same contract check the emulator runs.
                validate_assignments(
                    scheduler.name(),
                    &assignments,
                    ready.pending(),
                    &slots,
                    &self.platform,
                )?;
                assignments.sort_unstable_by_key(|a| a.ready_idx);
                for a in &assignments {
                    let rt = &ready.pending()[a.ready_idx];
                    let id = rt.task.instance.id;
                    let node_idx = rt.task.node_idx;
                    let col = names.pe_column(a.pe).expect("known PE");
                    let (dur, _) =
                        costs[names.spec_index(id)][node_idx][col].expect("compat checked");
                    let start = clock + charge;
                    let mut finish = start + dur;
                    tracer.emit(
                        clock,
                        TraceKind::TaskDispatch {
                            instance: id.0,
                            node: node_idx as u32,
                            pe: a.pe.0,
                        },
                    );
                    tracer.emit(clock, TraceKind::PeBusy { pe: a.pe.0 });
                    let runfunc = names.runfunc(id, node_idx, a.pe).cloned().unwrap_or_default();
                    let mut fault = None;
                    if let Some(plan) = plan {
                        let state = fstate.as_mut().expect("plan implies fault state");
                        let attempt = state.attempt_of(id.0, node_idx);
                        if attempt > 1 {
                            if let Some(prev) = state.last_fault_pe(id.0, node_idx) {
                                if pe_platform_key(prev) != pe_platform_key(a.pe) {
                                    sink.record_degraded(
                                        clock,
                                        id.0,
                                        node_idx,
                                        a.pe,
                                        state.note_degraded(id.0, node_idx),
                                    );
                                }
                            }
                        }
                        // The *estimate* (not the exact duration) feeds
                        // the hang deadline — the same value the
                        // threaded engine derives at its dispatch, since
                        // both engines observe completions identically.
                        let est = estimates
                            .estimate(&rt.task, &self.platform.pes[col])
                            .unwrap_or(Duration::from_micros(100));
                        if let Some(d) = plan.decide(
                            runfunc.as_str(),
                            a.pe,
                            id.0,
                            node_idx,
                            attempt,
                            start,
                            finish,
                            est,
                        ) {
                            finish = d.time;
                            fault = Some(d.kind);
                        }
                    }
                    slots.occupy(a.pe, finish);
                    events.push(Reverse(Event {
                        time: finish,
                        key: rt.task.key(),
                        seq: event_seq,
                        pe: a.pe,
                        ready_at: rt.ready_at,
                        dur,
                        runfunc,
                        fault,
                    }));
                    event_seq += 1;
                }
                ready.remove(&assignments);
            }

            // Advance to the next event (completion, arrival, or retry
            // release).
            let next_completion = events.peek().map(|Reverse(e)| e.time);
            let next_arr = arrival_order.get(next_arrival).map(|&(t, _)| t);
            let next_retry = retries.iter().map(|r| r.release).min();
            match [next_completion, next_arr, next_retry].into_iter().flatten().min() {
                Some(t) => clock = clock.max(t),
                None => {
                    if ready.is_empty() {
                        break;
                    }
                    // With fault recovery active this stall may mean
                    // "these tasks lost their last compatible PE"
                    // rather than a scheduler bug; let the resolver
                    // abort those apps and re-evaluate.
                    let resolved = match fstate.as_mut() {
                        Some(state) => resolve_unschedulable(
                            &self.platform,
                            &mut slots,
                            &mut ready,
                            state,
                            &mut sink,
                            names,
                        )?,
                        None => false,
                    };
                    if !resolved {
                        return Err(EmuError::Config(format!(
                            "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no events remain",
                            ready.len(),
                            scheduler.name()
                        )));
                    }
                }
            }
        }

        Ok(sink.finish(&self.platform, format!("{} (DES)", scheduler.name()), instances))
    }
}
