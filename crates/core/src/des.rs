//! A discrete-event simulator baseline (the DS3/SimGrid class of tools
//! the paper compares against, §III-D).
//!
//! Unlike the emulator, the DES executes nothing: task durations come
//! purely from statistical cost estimates, the clock jumps between
//! events, and — crucially — scheduling itself is free, which is exactly
//! the limitation the paper calls out ("they are inadequate in capturing
//! scheduling overhead and performing functional validation"). An
//! optional fixed per-invocation overhead can be charged to approximate
//! a runtime, which the ablation benches sweep.
//!
//! The DES shares the application model, platform descriptors, cost
//! tables, and the [`Scheduler`] implementations with the threaded
//! engine, so it doubles as a deterministic differential-testing oracle:
//! on a CPU-only platform with a fully populated [`CostTable`] and
//! [`OverheadMode::None`], the threaded engine in
//! [`TimingMode::Modeled`] and this simulator must agree on every task
//! start/finish time.
//!
//! [`CostTable`]: dssoc_platform::cost::CostTable
//! [`OverheadMode::None`]: crate::engine::OverheadMode::None
//! [`TimingMode::Modeled`]: crate::engine::TimingMode::Modeled

use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_appmodel::workload::Workload;
use dssoc_platform::cost::{CostModel, CostTable};
use dssoc_platform::pe::{PeDescriptor, PeId, PlatformConfig};
use dssoc_trace::{EventKind as TraceKind, TraceSink};

use crate::engine::EmuError;
use crate::exec::{
    pe_mask_bit, preflight_compat, register_trace_meta, validate_assignments, CompletionSink,
    ExecTracer, InstanceTracker, PeSlots, ReadyList,
};
use crate::sched::{EstimateBook, PeView, SchedContext, Scheduler};
use crate::stats::{EmulationStats, TaskRecord};
use crate::task::Task;
use crate::time::SimTime;

/// DES configuration.
pub struct DesConfig {
    /// Cost source for task durations (typically a calibrated
    /// [`CostTable`]).
    pub cost: Arc<dyn CostModel>,
    /// Optional fixed scheduling overhead charged per scheduler
    /// invocation (zero = the classic free-scheduling DES).
    pub overhead_per_invocation: Duration,
    /// Optional event-trace sink. The DES emits the same event schema
    /// as the threaded engine through the shared scheduling core, so
    /// traces from the two engines diff cleanly. (It has no resource
    /// pool or DMA phases, so `pool_*` and `dma` events never appear.)
    pub trace: Option<TraceSink>,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            cost: Arc::new(CostTable::new()),
            overhead_per_invocation: Duration::ZERO,
            trace: None,
        }
    }
}

/// The discrete-event simulator.
pub struct DesSimulator {
    platform: PlatformConfig,
    config: DesConfig,
}

#[derive(Debug)]
enum EventKind {
    Arrival(usize), // index into instances
    Completion { pe: PeId, ready_at: SimTime },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
    task: Option<Task>,
}

impl DesSimulator {
    /// Builds a simulator for a platform.
    pub fn new(platform: PlatformConfig, config: DesConfig) -> Result<Self, EmuError> {
        platform.validate().map_err(EmuError::Config)?;
        Ok(DesSimulator { platform, config })
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// Duration the DES charges for `task` on `pe`: cost model first,
    /// then the JSON per-platform estimate, then a speed-scaled default —
    /// the same priority the estimate book uses.
    fn duration_of(&self, task: &Task, pe: &PeDescriptor) -> Duration {
        let platform = task.node().platform(&pe.platform_key).expect("compat checked");
        if let Some(d) = self.config.cost.task_duration(&platform.runfunc, pe, Duration::ZERO) {
            return d;
        }
        if let Some(d) = platform.mean_exec {
            return d;
        }
        Duration::from_secs_f64(100e-6 / pe.speed())
    }

    /// Simulates a workload to completion under `scheduler`.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        workload: &Workload,
        library: &AppLibrary,
    ) -> Result<EmulationStats, EmuError> {
        // Compatibility pre-flight, shared with the emulator.
        preflight_compat(&self.platform, workload, library)?;
        let instances: Vec<Arc<AppInstance>> =
            workload.instantiate(library)?.into_iter().map(Arc::new).collect();

        let mut tracker = InstanceTracker::new(&instances);

        let mut events: Vec<Event> = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| Event {
                time: SimTime::from_duration(inst.arrival),
                seq: i as u64,
                kind: EventKind::Arrival(i),
                task: None,
            })
            .collect();
        let mut event_seq = instances.len() as u64;

        let mut ready = ReadyList::new();
        // DES PEs have no reservation queues (depth 0); the busy map
        // holds *exact* finish times — the simulator's one luxury over
        // the emulator's estimates.
        let mut slots = PeSlots::new(self.platform.pes.len(), 0);
        // The DES observes completions into an estimate book exactly like
        // the emulator, so estimate-driven policies (MET/EFT) see the
        // same context in both engines.
        let mut estimates = EstimateBook::new();

        let mut sink = CompletionSink::new();
        let tracer = match &self.config.trace {
            Some(trace_sink) => {
                register_trace_meta(
                    trace_sink,
                    &self.platform,
                    &format!("{} (DES)", scheduler.name()),
                    &instances,
                );
                ExecTracer::attach(trace_sink, "des")
            }
            None => ExecTracer::disabled(),
        };
        ready.set_tracer(tracer.clone());
        sink.set_tracer(tracer.clone());
        let mut clock = SimTime::ZERO;

        loop {
            // Drain everything due at the current clock first. Tie order
            // matches the threaded engine: completions before arrivals,
            // completions in (instance, node) order, arrivals in
            // instantiation order.
            events.sort_by_key(|e| {
                let (rank, key) = match &e.kind {
                    EventKind::Completion { .. } => {
                        let t = e.task.as_ref().expect("completion carries its task");
                        (0u8, t.key())
                    }
                    EventKind::Arrival(i) => (1u8, (InstanceId(*i as u64), 0usize)),
                };
                (e.time, rank, key, e.seq)
            });
            while let Some(pos) = events.iter().position(|e| e.time <= clock) {
                let ev = events.remove(pos);
                match ev.kind {
                    EventKind::Arrival(i) => {
                        tracer.emit(ev.time, TraceKind::AppArrive { instance: instances[i].id.0 });
                        ready.push_roots(&instances[i], ev.time);
                    }
                    EventKind::Completion { pe, ready_at } => {
                        // DES PEs have no reservation queues, so every
                        // completion idles its PE.
                        slots.release(pe);
                        tracer.emit(ev.time, TraceKind::PeIdle { pe: pe.0 });
                        let task = ev.task.expect("completion carries its task");
                        let node = task.node();
                        let desc = self.platform.pe(pe).expect("known PE");
                        let dur = self.duration_of(&task, desc);
                        let runfunc = node
                            .platform(&desc.platform_key)
                            .map(|p| p.runfunc.clone())
                            .unwrap_or_default();
                        estimates.observe(&runfunc, desc.class_name(), dur);
                        sink.record_task(TaskRecord {
                            instance: task.instance.id,
                            app: task.app_name().to_string(),
                            node: node.name.clone(),
                            node_idx: task.node_idx,
                            kernel: runfunc,
                            pe,
                            ready_at,
                            start: SimTime(ev.time.0 - dur.as_nanos() as u64),
                            finish: ev.time,
                            modeled: dur,
                            measured: Duration::ZERO,
                        });
                        if let Some(rec) = tracker.complete_task(&task, ev.time, &mut ready) {
                            sink.record_app(rec);
                        }
                    }
                }
            }

            // Schedule at the current clock.
            if !ready.is_empty() && slots.any_schedulable() {
                let views: Vec<PeView<'_>> =
                    self.platform.pes.iter().map(|pe| slots.view(pe, clock)).collect();
                let ctx = SchedContext { now: clock, estimates: &estimates };
                let mut assignments = scheduler.schedule(ready.pending(), &views, &ctx);
                sink.sched_invocations += 1;
                if tracer.enabled() {
                    let candidates =
                        views.iter().filter(|v| v.idle).fold(0u64, |m, v| m | pe_mask_bit(v.pe.id));
                    let chosen = assignments.iter().fold(0u64, |m, a| m | pe_mask_bit(a.pe));
                    tracer.emit(
                        clock,
                        TraceKind::SchedDecision {
                            invocation: sink.sched_invocations,
                            ready: ready.len() as u32,
                            candidates,
                            chosen,
                            assigned: assignments.len() as u32,
                        },
                    );
                }
                let charge = self.config.overhead_per_invocation;
                sink.overhead.schedule += charge;

                // The same contract check the emulator runs.
                validate_assignments(
                    scheduler.name(),
                    &assignments,
                    ready.pending(),
                    &slots,
                    &self.platform,
                )?;
                assignments.sort_by_key(|a| a.ready_idx);
                for a in &assignments {
                    let rt = ready.pending()[a.ready_idx].clone();
                    let desc = self.platform.pe(a.pe).expect("known PE");
                    let dur = self.duration_of(&rt.task, desc);
                    let finish = clock + charge + dur;
                    slots.occupy(a.pe, finish);
                    tracer.emit(
                        clock,
                        TraceKind::TaskDispatch {
                            instance: rt.task.instance.id.0,
                            node: rt.task.node_idx as u32,
                            pe: a.pe.0,
                        },
                    );
                    tracer.emit(clock, TraceKind::PeBusy { pe: a.pe.0 });
                    events.push(Event {
                        time: finish,
                        seq: event_seq,
                        kind: EventKind::Completion { pe: a.pe, ready_at: rt.ready_at },
                        task: Some(rt.task),
                    });
                    event_seq += 1;
                }
                ready.remove(&assignments);
            }

            // Advance to the next event.
            match events.iter().map(|e| e.time).min() {
                Some(t) => clock = clock.max(t),
                None => {
                    if ready.is_empty() {
                        break;
                    }
                    return Err(EmuError::Config(format!(
                        "deadlock: {} ready task(s) but scheduler '{}' dispatches nothing and no events remain",
                        ready.len(),
                        scheduler.name()
                    )));
                }
            }
        }

        Ok(sink.finish(&self.platform, format!("{} (DES)", scheduler.name()), instances))
    }
}
