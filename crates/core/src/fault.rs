//! Deterministic fault injection and the fault-tolerant recovery
//! policy shared by both engines.
//!
//! The reliability literature around this framework (CEDR, DS3) is
//! explicit that fault studies must be *reproducible*: a fault schedule
//! has to be a pure function of a seed, not of host timing. This module
//! delivers that: a [`FaultSpec`] (parsed from JSON or built in code)
//! compiles against a platform into a [`FaultPlan`], and every fault
//! decision is a pure function of `(seed, stream, kernel, PE, instance,
//! node, attempt)` through a splitmix64 mix — so the threaded emulator
//! and the DES, fed the same plan, inject byte-identical fault
//! sequences.
//!
//! Three failure modes are modeled:
//!
//! * **permanent** — a PE dies at a configured time and never returns;
//!   the task it was running (if any) is lost at that instant;
//! * **transient** — a per-execution-attempt probability that the
//!   attempt's result is bad (matched by kernel and/or PE);
//! * **hang** — the attempt stalls; its virtual completion is the
//!   watchdog deadline (`estimate × watchdog_factor`) instead of the
//!   modeled duration, and the PE is quarantined.
//!
//! Recovery is the [`RetryPolicy`]: bounded retries with deterministic
//! exponential backoff in virtual time, PE quarantine (always for
//! permanent/hang/watchdog faults, after `quarantine_after` faults for
//! transient ones), and graceful degradation — a retried task whose
//! preferred PE class is gone re-enters the ready list and the normal
//! alternate-runfunc resolution dispatches it onto a surviving class.
//! [`FaultState`] tracks the per-run mutable side (attempt counts,
//! per-PE fault counts, aborted instances) and turns each fault into a
//! [`FaultAction`] for the engine loop to execute.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use dssoc_platform::pe::{PeId, PlatformConfig};
use dssoc_trace::FaultKind;

use crate::time::SimTime;

/// Domain-separation tags for the per-mode decision streams: transient
/// and hang draws for the same attempt must be independent.
const TAG_TRANSIENT: u64 = 0x7472616e; // "tran"
const TAG_HANG: u64 = 0x68616e67; // "hang"

/// One splitmix64 step — the standard finalizer (Steele et al.), also
/// used here as the mixing function for decision hashing.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

/// FNV-1a over a string, for folding kernel names into the decision
/// hash without iterating byte-by-byte through splitmix.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A scheduled permanent PE failure.
#[derive(Debug, Clone, PartialEq)]
pub struct PermanentFault {
    /// The PE that fails.
    pub pe: u32,
    /// Failure time in emulation microseconds.
    pub at_us: f64,
}

/// A probabilistic per-attempt fault rule (transient failure or hang).
/// `None` fields match everything, so `{probability: p}` alone is a
/// global rule; among several matching rules the *maximum* probability
/// applies.
#[derive(Debug, Clone, PartialEq)]
pub struct RateFault {
    /// Match attempts running this runfunc (any kernel when `None`).
    pub kernel: Option<String>,
    /// Match attempts on this PE id (any PE when `None`).
    pub pe: Option<u32>,
    /// Per-attempt fault probability in `[0, 1]`.
    pub probability: f64,
}

/// Bounded-retry recovery policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Faulted attempts beyond the first execution that may be retried
    /// per task (attempt numbering is 1-based; `max_retries = 2` allows
    /// attempts 1..=3).
    pub max_retries: u32,
    /// Base backoff before a retry re-enters the ready list, in
    /// emulation microseconds; attempt `n` waits `backoff_us × 2^(n-1)`
    /// (capped at `2^10`).
    pub backoff_us: f64,
    /// Quarantine a PE once it has produced this many transient/exec
    /// faults. (Permanent, hang, and watchdog faults quarantine
    /// immediately regardless.)
    pub quarantine_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, backoff_us: 50.0, quarantine_after: 3 }
    }
}

/// A complete, seedable fault-injection specification. Compile it
/// against a platform with [`Self::compile`] to get the decision
/// function both engines consult.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// PRNG seed; equal seeds give byte-identical fault sequences on
    /// both engines.
    pub seed: u64,
    /// Scheduled permanent PE failures.
    pub permanent: Vec<PermanentFault>,
    /// Transient-failure rules.
    pub transient: Vec<RateFault>,
    /// Hung-kernel rules.
    pub hangs: Vec<RateFault>,
    /// Recovery policy.
    pub retry: RetryPolicy,
    /// A hung attempt is detected after `estimate × watchdog_factor` of
    /// virtual time (also scales the threaded engine's wall deadline).
    pub watchdog_factor: f64,
    /// Wall-clock floor for the threaded engine's watchdog, in
    /// milliseconds — modeled estimates are virtual time, so the real
    /// deadline needs a floor that tolerates host scheduling noise.
    pub watchdog_min_wall_ms: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            permanent: Vec::new(),
            transient: Vec::new(),
            hangs: Vec::new(),
            retry: RetryPolicy::default(),
            watchdog_factor: 8.0,
            watchdog_min_wall_ms: 1000.0,
        }
    }
}

fn parse_rate_rules(v: Option<&serde_json::Value>, what: &str) -> Result<Vec<RateFault>, String> {
    let Some(v) = v else { return Ok(Vec::new()) };
    let arr = v.as_array().ok_or_else(|| format!("'{what}' must be an array"))?;
    let mut rules = Vec::with_capacity(arr.len());
    for (i, r) in arr.iter().enumerate() {
        let obj = r.as_object().ok_or_else(|| format!("'{what}[{i}]' must be an object"))?;
        let probability = obj
            .get("probability")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| format!("'{what}[{i}]' needs a numeric 'probability'"))?;
        if !(0.0..=1.0).contains(&probability) {
            return Err(format!("'{what}[{i}].probability' must be in [0, 1]"));
        }
        rules.push(RateFault {
            kernel: obj.get("kernel").and_then(serde_json::Value::as_str).map(str::to_string),
            pe: obj.get("pe").and_then(serde_json::Value::as_u64).map(|p| p as u32),
            probability,
        });
    }
    Ok(rules)
}

impl FaultSpec {
    /// Parses a spec from its JSON form. Every field is optional except
    /// that rate rules must carry a `probability`:
    ///
    /// ```json
    /// {
    ///   "seed": 42,
    ///   "permanent": [{"pe": 3, "at_us": 5000.0}],
    ///   "transient": [{"kernel": "pd_FFT_ACCEL", "probability": 0.1}],
    ///   "hangs": [{"pe": 2, "probability": 0.01}],
    ///   "retry": {"max_retries": 2, "backoff_us": 50.0, "quarantine_after": 3},
    ///   "watchdog_factor": 8.0,
    ///   "watchdog_min_wall_ms": 1000.0
    /// }
    /// ```
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("fault spec: {e}"))?;
        let obj = v.as_object().ok_or("fault spec must be a JSON object")?;
        let mut spec = FaultSpec::default();
        if let Some(seed) = obj.get("seed") {
            spec.seed = seed.as_u64().ok_or("'seed' must be a non-negative integer")?;
        }
        if let Some(perm) = obj.get("permanent") {
            let arr = perm.as_array().ok_or("'permanent' must be an array")?;
            for (i, p) in arr.iter().enumerate() {
                let pobj =
                    p.as_object().ok_or_else(|| format!("'permanent[{i}]' must be an object"))?;
                let pe = pobj
                    .get("pe")
                    .and_then(serde_json::Value::as_u64)
                    .ok_or_else(|| format!("'permanent[{i}]' needs an integer 'pe'"))?;
                let at_us = pobj
                    .get("at_us")
                    .and_then(serde_json::Value::as_f64)
                    .ok_or_else(|| format!("'permanent[{i}]' needs a numeric 'at_us'"))?;
                spec.permanent.push(PermanentFault { pe: pe as u32, at_us });
            }
        }
        spec.transient = parse_rate_rules(obj.get("transient"), "transient")?;
        spec.hangs = parse_rate_rules(obj.get("hangs"), "hangs")?;
        if let Some(r) = obj.get("retry") {
            let robj = r.as_object().ok_or("'retry' must be an object")?;
            if let Some(m) = robj.get("max_retries") {
                spec.retry.max_retries =
                    m.as_u64().ok_or("'retry.max_retries' must be an integer")? as u32;
            }
            if let Some(b) = robj.get("backoff_us") {
                spec.retry.backoff_us = b.as_f64().ok_or("'retry.backoff_us' must be numeric")?;
            }
            if let Some(q) = robj.get("quarantine_after") {
                let q = q.as_u64().ok_or("'retry.quarantine_after' must be an integer")? as u32;
                if q == 0 {
                    return Err("'retry.quarantine_after' must be at least 1".into());
                }
                spec.retry.quarantine_after = q;
            }
        }
        if let Some(f) = obj.get("watchdog_factor") {
            let f = f.as_f64().ok_or("'watchdog_factor' must be numeric")?;
            if f < 1.0 {
                return Err("'watchdog_factor' must be >= 1".into());
            }
            spec.watchdog_factor = f;
        }
        if let Some(w) = obj.get("watchdog_min_wall_ms") {
            spec.watchdog_min_wall_ms =
                w.as_f64().ok_or("'watchdog_min_wall_ms' must be numeric")?;
        }
        Ok(spec)
    }

    /// Resolves this spec against a platform into the decision function
    /// the engines consult. Permanent failures naming unknown PEs are
    /// rejected here rather than silently ignored.
    pub fn compile(&self, platform: &PlatformConfig) -> Result<FaultPlan, String> {
        let top = platform.pes.iter().map(|pe| pe.id.0 as usize + 1).max().unwrap_or(0);
        let mut permanent = vec![None; top];
        for p in &self.permanent {
            if !platform.pes.iter().any(|pe| pe.id.0 == p.pe) {
                return Err(format!(
                    "fault spec names PE {} but platform '{}' has no such PE",
                    p.pe, platform.name
                ));
            }
            let at = SimTime((p.at_us * 1e3) as u64);
            let slot = &mut permanent[p.pe as usize];
            // Earliest failure wins if a PE is named twice.
            *slot = Some(slot.map_or(at, |t: SimTime| t.min(at)));
        }
        Ok(FaultPlan {
            seed: self.seed,
            permanent,
            transient: self.transient.clone(),
            hangs: self.hangs.clone(),
            retry: self.retry.clone(),
            watchdog_factor: self.watchdog_factor,
            watchdog_min_wall: Duration::from_secs_f64(self.watchdog_min_wall_ms.max(0.0) * 1e-3),
        })
    }
}

/// A fault decided for one execution attempt: when it manifests on the
/// emulation clock and as what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// When the fault manifests (the attempt's rewritten finish time).
    pub time: SimTime,
    /// Failure mode.
    pub kind: FaultKind,
}

/// A [`FaultSpec`] compiled against a platform: the pure decision
/// function both engines call per execution attempt.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    permanent: Vec<Option<SimTime>>, // by PeId index
    transient: Vec<RateFault>,
    hangs: Vec<RateFault>,
    /// The recovery policy this plan was compiled with.
    pub retry: RetryPolicy,
    /// Virtual watchdog deadline factor (× the dispatch-time estimate).
    pub watchdog_factor: f64,
    /// Wall-clock watchdog floor for the threaded engine.
    pub watchdog_min_wall: Duration,
}

impl FaultPlan {
    /// When `pe` permanently fails, if scheduled to.
    pub fn permanent_failure_at(&self, pe: PeId) -> Option<SimTime> {
        self.permanent.get(pe.0 as usize).copied().flatten()
    }

    /// Uniform draw in `[0, 1)` for one `(mode, kernel, pe, instance,
    /// node, attempt)` tuple — a pure hash, independent of host timing
    /// and of evaluation order, which is what makes the two engines'
    /// fault sequences identical.
    fn draw(
        &self,
        tag: u64,
        kernel: &str,
        pe: PeId,
        instance: u64,
        node: usize,
        attempt: u32,
    ) -> f64 {
        let mut h = splitmix64(self.seed ^ tag);
        h = mix(h, fnv1a(kernel));
        h = mix(h, u64::from(pe.0));
        h = mix(h, instance);
        h = mix(h, node as u64);
        h = mix(h, u64::from(attempt));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Highest probability among rules matching `(kernel, pe)`; 0 when
    /// none match.
    fn rate(rules: &[RateFault], kernel: &str, pe: PeId) -> f64 {
        rules
            .iter()
            .filter(|r| r.kernel.as_deref().is_none_or(|k| k == kernel))
            .filter(|r| r.pe.is_none_or(|p| p == pe.0))
            .map(|r| r.probability)
            .fold(0.0, f64::max)
    }

    /// Decides the fate of one execution attempt. `start` and
    /// `natural_finish` are the attempt's dispatch-time interval on the
    /// emulation clock; `est` is the dispatch-time estimate the hang
    /// deadline derives from; `attempt` is 1-based.
    ///
    /// Precedence: a permanent PE failure inside the attempt's window
    /// trumps everything (the PE dies mid-flight); otherwise a hang draw
    /// stretches the attempt to the virtual watchdog deadline; otherwise
    /// a transient draw fails the attempt at its natural finish.
    #[allow(clippy::too_many_arguments)]
    pub fn decide(
        &self,
        kernel: &str,
        pe: PeId,
        instance: u64,
        node: usize,
        attempt: u32,
        start: SimTime,
        natural_finish: SimTime,
        est: Duration,
    ) -> Option<FaultDecision> {
        let hang_p = Self::rate(&self.hangs, kernel, pe);
        let hang =
            hang_p > 0.0 && self.draw(TAG_HANG, kernel, pe, instance, node, attempt) < hang_p;
        let natural_end =
            if hang { start + mul_duration(est, self.watchdog_factor) } else { natural_finish };
        if let Some(tf) = self.permanent_failure_at(pe) {
            if tf < natural_end {
                return Some(FaultDecision { time: tf.max(start), kind: FaultKind::Permanent });
            }
        }
        if hang {
            return Some(FaultDecision { time: natural_end, kind: FaultKind::Hang });
        }
        let t_p = Self::rate(&self.transient, kernel, pe);
        if t_p > 0.0 && self.draw(TAG_TRANSIENT, kernel, pe, instance, node, attempt) < t_p {
            return Some(FaultDecision { time: natural_finish, kind: FaultKind::Transient });
        }
        None
    }

    /// Deterministic backoff before retry attempt `attempt + 1`:
    /// `backoff_us × 2^(attempt-1)`, exponent capped at 10.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(10);
        Duration::from_secs_f64(self.retry.backoff_us.max(0.0) * 1e-6 * (1u64 << exp) as f64)
    }
}

fn mul_duration(d: Duration, k: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * k)
}

/// What the engine loop must do about one fault: quarantine the PE,
/// requeue the task (with the 1-based attempt that just faulted and the
/// virtual release time after backoff), or give the application up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// Remove the PE from the schedulable set for the rest of the run.
    pub quarantine: bool,
    /// `Some((attempt, release))`: requeue the task at `release`.
    pub retry: Option<(u32, SimTime)>,
    /// The task's retry budget is exhausted and its application was not
    /// already aborted — count it now.
    pub newly_aborted: bool,
}

/// Per-run mutable fault-recovery state (attempt counts, per-PE fault
/// counts, aborted instances, degraded-dispatch tracking). One per
/// engine run; both engines drive it identically.
#[derive(Debug)]
pub struct FaultState {
    policy: RetryPolicy,
    // Faulted attempts per (instance, node); the next attempt number is
    // this count + 1.
    attempts: HashMap<(u64, usize), u32>,
    // The PE each (instance, node) last faulted on, for degraded-
    // dispatch detection.
    last_pe: HashMap<(u64, usize), PeId>,
    // Transient/exec fault counts per PE (quarantine threshold).
    pe_faults: HashMap<u32, u32>,
    faulted_instances: HashSet<u64>,
    aborted: HashSet<u64>,
    degraded: HashSet<(u64, usize)>,
    last_context: Option<(u64, usize, PeId)>,
}

impl FaultState {
    /// Fresh state under a recovery policy.
    pub fn new(policy: RetryPolicy) -> Self {
        FaultState {
            policy,
            attempts: HashMap::new(),
            last_pe: HashMap::new(),
            pe_faults: HashMap::new(),
            faulted_instances: HashSet::new(),
            aborted: HashSet::new(),
            degraded: HashSet::new(),
            last_context: None,
        }
    }

    /// The 1-based attempt number the next dispatch of `(instance,
    /// node)` will be.
    pub fn attempt_of(&self, instance: u64, node: usize) -> u32 {
        self.attempts.get(&(instance, node)).copied().unwrap_or(0) + 1
    }

    /// The PE `(instance, node)` last faulted on, if it has faulted.
    pub fn last_fault_pe(&self, instance: u64, node: usize) -> Option<PeId> {
        self.last_pe.get(&(instance, node)).copied()
    }

    /// True if any attempt of any task of `instance` faulted.
    pub fn had_faults(&self, instance: u64) -> bool {
        self.faulted_instances.contains(&instance)
    }

    /// True if `instance` was given up on.
    pub fn is_aborted(&self, instance: u64) -> bool {
        self.aborted.contains(&instance)
    }

    /// Marks `instance` aborted without a fault attempt (used when its
    /// remaining tasks become unschedulable); true if newly aborted.
    pub fn abort(&mut self, instance: u64) -> bool {
        self.aborted.insert(instance)
    }

    /// The most recent fault's `(instance, node, pe)`, for error
    /// context when a run becomes unrecoverable.
    pub fn last_context(&self) -> Option<(u64, usize, PeId)> {
        self.last_context
    }

    /// Marks `(instance, node)`'s current dispatch as degraded; true
    /// the first time (the unique-task counter increments then).
    pub fn note_degraded(&mut self, instance: u64, node: usize) -> bool {
        self.degraded.insert((instance, node))
    }

    /// Registers one fault at `at` and decides recovery. Must be called
    /// in fault order — both engines process completions in the shared
    /// deterministic order, so the resulting retry/abort/quarantine
    /// sequences match across engines.
    pub fn on_fault(
        &mut self,
        plan: &FaultPlan,
        instance: u64,
        node: usize,
        pe: PeId,
        kind: FaultKind,
        at: SimTime,
    ) -> FaultAction {
        self.faulted_instances.insert(instance);
        self.last_context = Some((instance, node, pe));
        self.last_pe.insert((instance, node), pe);
        let count = self.attempts.entry((instance, node)).or_insert(0);
        *count += 1;
        let attempt = *count;
        let quarantine = match kind {
            FaultKind::Permanent | FaultKind::Hang | FaultKind::Watchdog => true,
            FaultKind::Transient | FaultKind::Exec => {
                let c = self.pe_faults.entry(pe.0).or_insert(0);
                *c += 1;
                *c >= self.policy.quarantine_after
            }
        };
        if attempt <= self.policy.max_retries && !self.aborted.contains(&instance) {
            FaultAction {
                quarantine,
                retry: Some((attempt, at + plan.backoff(attempt))),
                newly_aborted: false,
            }
        } else {
            FaultAction { quarantine, retry: None, newly_aborted: self.aborted.insert(instance) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssoc_platform::presets::zcu102;

    fn plan(spec: &FaultSpec) -> FaultPlan {
        spec.compile(&zcu102(2, 1)).unwrap()
    }

    #[test]
    fn spec_json_round_trip_fields() {
        let spec = FaultSpec::from_json(
            r#"{
                "seed": 42,
                "permanent": [{"pe": 2, "at_us": 5000.0}],
                "transient": [{"kernel": "k", "probability": 0.5}, {"pe": 1, "probability": 0.25}],
                "hangs": [{"probability": 0.125}],
                "retry": {"max_retries": 4, "backoff_us": 10.0, "quarantine_after": 2},
                "watchdog_factor": 4.0,
                "watchdog_min_wall_ms": 20.0
            }"#,
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.permanent, vec![PermanentFault { pe: 2, at_us: 5000.0 }]);
        assert_eq!(spec.transient.len(), 2);
        assert_eq!(spec.transient[0].kernel.as_deref(), Some("k"));
        assert_eq!(spec.transient[1].pe, Some(1));
        assert_eq!(spec.hangs[0].probability, 0.125);
        assert_eq!(
            spec.retry,
            RetryPolicy { max_retries: 4, backoff_us: 10.0, quarantine_after: 2 }
        );
        assert_eq!(spec.watchdog_factor, 4.0);
        assert_eq!(spec.watchdog_min_wall_ms, 20.0);
    }

    #[test]
    fn spec_json_defaults_and_errors() {
        let spec = FaultSpec::from_json("{}").unwrap();
        assert_eq!(spec, FaultSpec::default());
        for bad in [
            "[]",
            r#"{"seed": -1}"#,
            r#"{"transient": [{}]}"#,
            r#"{"transient": [{"probability": 1.5}]}"#,
            r#"{"permanent": [{"pe": 0}]}"#,
            r#"{"watchdog_factor": 0.5}"#,
            r#"{"retry": {"quarantine_after": 0}}"#,
        ] {
            assert!(FaultSpec::from_json(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn compile_rejects_unknown_pe() {
        let spec = FaultSpec {
            permanent: vec![PermanentFault { pe: 99, at_us: 1.0 }],
            ..FaultSpec::default()
        };
        assert!(spec.compile(&zcu102(2, 1)).is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec {
            seed: 7,
            transient: vec![RateFault { kernel: None, pe: None, probability: 0.5 }],
            ..FaultSpec::default()
        };
        let p1 = plan(&spec);
        let p2 = plan(&spec);
        let p3 = plan(&FaultSpec { seed: 8, ..spec.clone() });
        let args = |p: &FaultPlan, inst: u64| {
            p.decide("k", PeId(0), inst, 0, 1, SimTime(0), SimTime(100), Duration::from_micros(1))
        };
        let mut differs = false;
        for inst in 0..64 {
            assert_eq!(args(&p1, inst), args(&p2, inst), "same seed must agree");
            differs |= args(&p1, inst) != args(&p3, inst);
        }
        assert!(differs, "different seeds should produce different fault patterns");
        // ~half the draws should fault at p = 0.5.
        let hits = (0..256).filter(|&i| args(&p1, i).is_some()).count();
        assert!((64..192).contains(&hits), "p=0.5 hit rate way off: {hits}/256");
    }

    #[test]
    fn rule_matching_takes_max_probability() {
        let spec = FaultSpec {
            transient: vec![
                RateFault { kernel: Some("k".into()), pe: None, probability: 1.0 },
                RateFault { kernel: None, pe: Some(1), probability: 0.0 },
            ],
            ..FaultSpec::default()
        };
        let p = plan(&spec);
        // kernel "k" always faults (p=1 rule wins over the p=0 rule).
        let d = p
            .decide("k", PeId(1), 0, 0, 1, SimTime(0), SimTime(50), Duration::from_micros(1))
            .unwrap();
        assert_eq!(d.kind, FaultKind::Transient);
        assert_eq!(d.time, SimTime(50));
        // other kernels never match any rule.
        assert!(p
            .decide("other", PeId(0), 0, 0, 1, SimTime(0), SimTime(50), Duration::from_micros(1))
            .is_none());
    }

    #[test]
    fn permanent_fault_trumps_and_clamps_to_start() {
        let spec = FaultSpec {
            permanent: vec![PermanentFault { pe: 0, at_us: 1.0 }], // t = 1000 ns
            transient: vec![RateFault { kernel: None, pe: None, probability: 1.0 }],
            ..FaultSpec::default()
        };
        let p = plan(&spec);
        // Attempt crossing the failure time dies at the failure time.
        let d = p
            .decide("k", PeId(0), 0, 0, 1, SimTime(500), SimTime(2000), Duration::from_micros(1))
            .unwrap();
        assert_eq!((d.kind, d.time), (FaultKind::Permanent, SimTime(1000)));
        // Attempt starting after the failure time dies at its start.
        let d = p
            .decide("k", PeId(0), 0, 0, 1, SimTime(1500), SimTime(2000), Duration::from_micros(1))
            .unwrap();
        assert_eq!((d.kind, d.time), (FaultKind::Permanent, SimTime(1500)));
        // Attempt finishing before the failure time: the transient rule
        // applies instead.
        let d = p
            .decide("k", PeId(0), 0, 0, 1, SimTime(0), SimTime(900), Duration::from_micros(1))
            .unwrap();
        assert_eq!((d.kind, d.time), (FaultKind::Transient, SimTime(900)));
        // Other PEs are untouched by the permanent rule.
        assert_eq!(p.permanent_failure_at(PeId(1)), None);
        assert_eq!(p.permanent_failure_at(PeId(0)), Some(SimTime(1000)));
    }

    #[test]
    fn hang_stretches_to_watchdog_deadline() {
        let spec = FaultSpec {
            hangs: vec![RateFault { kernel: None, pe: None, probability: 1.0 }],
            watchdog_factor: 4.0,
            ..FaultSpec::default()
        };
        let p = plan(&spec);
        let d = p
            .decide("k", PeId(0), 3, 1, 1, SimTime(1000), SimTime(2000), Duration::from_micros(1))
            .unwrap();
        assert_eq!((d.kind, d.time), (FaultKind::Hang, SimTime(1000 + 4000)));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = plan(&FaultSpec::default()); // backoff_us = 50
        assert_eq!(p.backoff(1), Duration::from_micros(50));
        assert_eq!(p.backoff(2), Duration::from_micros(100));
        assert_eq!(p.backoff(3), Duration::from_micros(200));
        assert_eq!(p.backoff(20), Duration::from_micros(50 * 1024));
    }

    #[test]
    fn state_retries_then_aborts_and_quarantines() {
        let spec = FaultSpec {
            retry: RetryPolicy { max_retries: 2, backoff_us: 10.0, quarantine_after: 2 },
            ..FaultSpec::default()
        };
        let p = plan(&spec);
        let mut s = FaultState::new(spec.retry.clone());
        assert_eq!(s.attempt_of(5, 0), 1);

        // First transient fault: retry, no quarantine yet.
        let a = s.on_fault(&p, 5, 0, PeId(1), FaultKind::Transient, SimTime(1000));
        assert_eq!(
            a,
            FaultAction {
                quarantine: false,
                retry: Some((1, SimTime(11_000))),
                newly_aborted: false
            }
        );
        assert_eq!(s.attempt_of(5, 0), 2);
        assert!(s.had_faults(5) && !s.is_aborted(5));
        assert_eq!(s.last_fault_pe(5, 0), Some(PeId(1)));

        // Second transient fault on the same PE: retry with doubled
        // backoff, and the PE hits its quarantine threshold.
        let a = s.on_fault(&p, 5, 0, PeId(1), FaultKind::Transient, SimTime(20_000));
        assert_eq!(
            a,
            FaultAction {
                quarantine: true,
                retry: Some((2, SimTime(40_000))),
                newly_aborted: false
            }
        );

        // Third fault: retry budget exhausted — abort, once.
        let a = s.on_fault(&p, 5, 0, PeId(0), FaultKind::Transient, SimTime(50_000));
        assert!(a.retry.is_none() && a.newly_aborted);
        assert!(s.is_aborted(5));
        let a = s.on_fault(&p, 5, 1, PeId(0), FaultKind::Transient, SimTime(60_000));
        assert!(a.retry.is_none() && !a.newly_aborted, "already-aborted instances never retry");

        // Permanent faults quarantine immediately.
        let a = s.on_fault(&p, 6, 0, PeId(2), FaultKind::Permanent, SimTime(100));
        assert!(a.quarantine && a.retry.is_some());
        assert_eq!(s.last_context(), Some((6, 0, PeId(2))));

        // Degraded-dispatch tracking counts each task once.
        assert!(s.note_degraded(6, 0));
        assert!(!s.note_degraded(6, 0));
        // Unschedulable-abort marks instances once.
        assert!(s.abort(7));
        assert!(!s.abort(7));
    }
}
