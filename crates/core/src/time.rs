//! Emulation time.
//!
//! The paper "defines emulation time as the time spent in execution after
//! capturing the reference start time". [`SimTime`] is that quantity in
//! nanoseconds. In wall-clock mode it tracks `Instant::elapsed`; in
//! modeled mode it is a virtual clock advanced by the workload manager.

use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point on the emulation clock, in nanoseconds since the reference
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The reference start time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds from a duration since the reference start.
    pub fn from_duration(d: Duration) -> SimTime {
        SimTime(d.as_nanos().min(u64::MAX as u128) as u64)
    }

    /// The elapsed duration since the reference start.
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Seconds since the reference start as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating difference between two times.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos().min(u64::MAX as u128) as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_duration(Duration::from_micros(1234));
        assert_eq!(t.as_duration(), Duration::from_micros(1234));
        assert!((t.as_secs_f64() - 1.234e-3).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t, SimTime(5_000_000));
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO, "saturating");
        assert_eq!(t - SimTime(1_000_000), Duration::from_millis(4));
        let mut u = t;
        u += Duration::from_millis(1);
        assert_eq!(u, SimTime(6_000_000));
    }

    #[test]
    fn min_max_and_saturation() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime(1_500_000_000).to_string(), "1.500000s");
    }
}
