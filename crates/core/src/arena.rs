//! Warm per-simulator scratch for the DES hot loop.
//!
//! PR 3 made a single DES run allocation-free *within* the run; this
//! module makes it allocation-free *across* runs. [`DesScratch`] owns
//! every growable buffer the hot loop touches — the calendar queue, the
//! SoA instance-state arrays, the ready list's backing store, the
//! completion columns, retry and assignment staging — and lives inside
//! [`DesSimulator`], so warm [`JobRunner`] engines and repeat-iteration
//! sweep cells reuse the same capacity run after run. [`DesScratch::reset`]
//! clears lengths but never frees: after the first run at a given
//! problem size, subsequent runs perform no heap allocation in the
//! simulation loop. The one deliberate exception is [`DoneColumns`] —
//! completed-task columns leave the arena with the run's stats (they
//! back the lazily-materialized task log), so each run pays exactly one
//! right-sized reservation for them up front instead of reusing the
//! previous run's storage.
//!
//! Also here: [`CompletionEvent`], the 64-byte POD the calendar queue
//! carries (ordered by the engine-wide `(time, key, seq)` tie-break);
//! [`DoneColumns`], struct-of-arrays storage for completed-task facts
//! that are materialized into [`TaskRecord`]s only if someone reads the
//! per-task log; [`DenseReady`], the `Arc`-free ready-ring entry the
//! dense FIFO fast loop queues; and [`ViewScratch`], which recycles the
//! `Vec<PeView<'_>>` scheduler-view allocation across runs despite its
//! borrowed lifetime.
//!
//! [`DesSimulator`]: crate::des::DesSimulator
//! [`JobRunner`]: crate::job::JobRunner
//! [`TaskRecord`]: crate::stats::TaskRecord

use dssoc_trace::FaultKind;

use crate::calq::{CalendarQueue, Timed};
use crate::job::Fingerprint;
use crate::sched::{Assignment, EstimateBook, PeView};
use crate::task::{ReadyTask, Task};
use crate::time::SimTime;

/// A task completion (or fault) scheduled on the DES calendar queue.
///
/// Plain-old-data: the task is identified by `(inst, node)` index pair
/// rather than an `Arc` handle, so events copy in one move and carry no
/// refcount traffic. `col` is the PE's platform column (its index in
/// `platform.pes`), `dur_ns` the modeled duration — together with
/// `time` they reconstruct the start time without storing it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompletionEvent {
    /// Completion (or fault) timestamp.
    pub time: SimTime,
    /// Instance id (`InstanceId.0`).
    pub inst: u32,
    /// DAG node index within the instance.
    pub node: u32,
    /// Dispatch sequence number — the final tie-breaker, preserving the
    /// engine-wide `(time, key, seq)` pop order the differential suites
    /// pin down.
    pub seq: u64,
    /// PE column in `platform.pes`.
    pub col: u32,
    /// When the task became ready (for the task record).
    pub ready_at: SimTime,
    /// Modeled duration in ns (`start = time - dur_ns` absent faults).
    pub dur_ns: u64,
    /// `Some` when this event is an injected fault firing mid-task.
    pub fault: Option<FaultKind>,
}

impl CompletionEvent {
    /// The shared tie-break. Must stay aligned with the threaded
    /// engine's completion ordering and the pre-calendar-queue
    /// `BinaryHeap` event: time first, then task key, then sequence.
    fn order_key(&self) -> (SimTime, u32, u32, u64) {
        (self.time, self.inst, self.node, self.seq)
    }
}

impl PartialEq for CompletionEvent {
    fn eq(&self, other: &Self) -> bool {
        self.order_key() == other.order_key()
    }
}

impl Eq for CompletionEvent {}

impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompletionEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl Timed for CompletionEvent {
    fn time_ns(&self) -> u64 {
        self.time.0
    }
}

/// One entry in the dense FIFO ready ring: the task as an index pair
/// plus its readiness timestamp. 16 bytes, no `Arc` handle — pushing a
/// task onto the ready queue in the dense loop is a plain store with no
/// refcount traffic (the general [`ReadyList`](crate::exec::ReadyList)
/// clones an `Arc<AppInstance>` per push).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DenseReady {
    /// Instance id (`InstanceId.0`).
    pub inst: u32,
    /// DAG node index within the instance.
    pub node: u32,
    /// When the task became ready (last predecessor completion, or the
    /// instance arrival for roots).
    pub ready_ns: u64,
}

/// A faulted task waiting out its retry backoff.
#[derive(Debug)]
pub(crate) struct RetryEntry {
    /// When the task re-enters the ready list.
    pub release: SimTime,
    /// Dispatch seq of the faulted attempt (stable retry ordering).
    pub seq: u64,
    pub task: Task,
}

/// Struct-of-arrays storage for completed-task facts.
///
/// The hot loop appends six integers per completion; the fat
/// [`TaskRecord`](crate::stats::TaskRecord)s (with their `Name` clone
/// refcounts) are materialized once, after the loop, via
/// [`CompletionSink::ingest_tasks`](crate::exec::CompletionSink::ingest_tasks).
#[derive(Debug, Default, Clone)]
pub(crate) struct DoneColumns {
    pub inst: Vec<u32>,
    pub node: Vec<u32>,
    pub col: Vec<u32>,
    pub ready_ns: Vec<u64>,
    pub finish_ns: Vec<u64>,
    pub dur_ns: Vec<u64>,
}

impl DoneColumns {
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        inst: u32,
        node: u32,
        col: u32,
        ready_ns: u64,
        finish_ns: u64,
        dur_ns: u64,
    ) {
        self.inst.push(inst);
        self.node.push(node);
        self.col.push(col);
        self.ready_ns.push(ready_ns);
        self.finish_ns.push(finish_ns);
        self.dur_ns.push(dur_ns);
    }

    /// Pre-sizes every column for `n` more completions. The DES
    /// prologue knows the run's exact task count, so the fast path that
    /// moves these columns out into the run's [`TaskLog`] re-sizes them
    /// in one right-sized allocation per column instead of doubling.
    ///
    /// [`TaskLog`]: crate::stats::TaskLog
    pub fn reserve(&mut self, n: usize) {
        self.inst.reserve(n);
        self.node.reserve(n);
        self.col.reserve(n);
        self.ready_ns.reserve(n);
        self.finish_ns.reserve(n);
        self.dur_ns.reserve(n);
    }

    pub fn len(&self) -> usize {
        self.inst.len()
    }

    pub fn clear(&mut self) {
        self.inst.clear();
        self.node.clear();
        self.col.clear();
        self.ready_ns.clear();
        self.finish_ns.clear();
        self.dur_ns.clear();
    }
}

/// Recycles the scheduler's `Vec<PeView<'_>>` allocation across runs.
///
/// The views borrow `PeDescriptor`s with the run's lifetime, so the
/// vector cannot be stored in [`DesScratch`] as-is. Since the buffer is
/// always *empty* at the take/put boundary, only the allocation (not
/// any borrowed data) crosses runs, making the lifetime cast sound.
#[derive(Debug, Default)]
pub(crate) struct ViewScratch(Vec<PeView<'static>>);

impl ViewScratch {
    /// Hands the empty backing buffer out at the caller's lifetime.
    pub fn take<'a>(&mut self) -> Vec<PeView<'a>> {
        let mut v = std::mem::take(&mut self.0);
        v.clear();
        // SAFETY: `v` is empty — it holds no `PeView` values, so no
        // `&'static PeDescriptor` is fabricated; the types differ only
        // in lifetime, so layout is identical and only the allocation
        // is reused.
        unsafe { std::mem::transmute::<Vec<PeView<'static>>, Vec<PeView<'a>>>(v) }
    }

    /// Returns the buffer, dropping all borrowed views first.
    pub fn put<'a>(&mut self, mut v: Vec<PeView<'a>>) {
        v.clear();
        // SAFETY: mirror of `take` — `v` was just cleared, so the
        // vector carries capacity only, no borrowed data.
        self.0 = unsafe { std::mem::transmute::<Vec<PeView<'a>>, Vec<PeView<'static>>>(v) };
    }
}

/// Every growable buffer the DES hot loop touches, owned by the
/// simulator so capacity survives across runs (see module docs).
///
/// `reset` clears everything except the estimate book, whose reuse
/// policy (values-only reset vs full rebuild) is decided per run from
/// `est_src`.
#[derive(Debug)]
pub(crate) struct DesScratch {
    /// `instance id -> base flat task id` (prefix sums of node counts).
    pub inst_base: Vec<u32>,
    /// Per flat task id: predecessors still outstanding.
    pub remaining_preds: Vec<u32>,
    /// Per instance id: tasks still incomplete (app finishes at zero).
    pub remaining_tasks: Vec<u32>,
    /// `(arrival, instance slice index)`, sorted; drained by cursor.
    pub arrival_order: Vec<(SimTime, u32)>,
    /// Completed-task columns, materialized to records at end of run.
    pub done: DoneColumns,
    /// The completion event calendar queue.
    pub events: CalendarQueue<CompletionEvent>,
    /// Same-timestamp batch drained from `events` each iteration.
    pub due: Vec<CompletionEvent>,
    /// Faulted tasks waiting out retry backoff.
    pub retries: Vec<RetryEntry>,
    /// Backing storage for the run's `ReadyList`.
    pub ready_buf: Vec<ReadyTask>,
    /// Ready ring for the dense FIFO loop (head-indexed, periodically
    /// compacted — the dense counterpart of `ready_buf`).
    pub dense_ready: Vec<DenseReady>,
    /// Warm estimate book, reset from the scenario prototype each run.
    pub estimates: EstimateBook,
    /// Which compiled scenario `estimates`' slot map came from. When it
    /// matches the incoming run, reset copies values only (the slot map
    /// is immutable during a run); otherwise the book is rebuilt.
    pub est_src: Option<Fingerprint>,
    /// Recycled scheduler-view allocation.
    pub views: ViewScratch,
    /// Scheduler output staging (`schedule_into` target).
    pub assignments: Vec<Assignment>,
}

impl Default for DesScratch {
    fn default() -> Self {
        DesScratch {
            inst_base: Vec::new(),
            remaining_preds: Vec::new(),
            remaining_tasks: Vec::new(),
            arrival_order: Vec::new(),
            done: DoneColumns::default(),
            events: CalendarQueue::new(),
            due: Vec::new(),
            retries: Vec::new(),
            ready_buf: Vec::new(),
            dense_ready: Vec::new(),
            estimates: EstimateBook::new(),
            est_src: None,
            views: ViewScratch::default(),
            assignments: Vec::new(),
        }
    }
}

impl DesScratch {
    /// Clears all per-run state, retaining capacity. The estimate book
    /// is left to the run prologue (its reset depends on `est_src`).
    pub fn reset(&mut self) {
        self.inst_base.clear();
        self.remaining_preds.clear();
        self.remaining_tasks.clear();
        self.arrival_order.clear();
        self.done.clear();
        self.events.clear();
        self.due.clear();
        self.retries.clear();
        self.ready_buf.clear();
        self.dense_ready.clear();
        self.assignments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn ev(time: u64, inst: u32, node: u32, seq: u64) -> CompletionEvent {
        CompletionEvent {
            time: SimTime(time),
            inst,
            node,
            seq,
            col: 0,
            ready_at: SimTime::ZERO,
            dur_ns: 0,
            fault: None,
        }
    }

    /// The simulator must stay `Send` with the scratch inside it —
    /// `JobRunner` engines move across sweep worker threads.
    #[test]
    fn scratch_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DesScratch>();
    }

    /// Event ordering ignores payload fields — only the shared
    /// `(time, key, seq)` tie-break participates, exactly like the old
    /// heap event.
    #[test]
    fn event_order_is_time_key_seq() {
        let mut events =
            [ev(5, 0, 0, 9), ev(3, 7, 0, 0), ev(3, 1, 2, 4), ev(3, 1, 2, 3), ev(3, 1, 1, 8)];
        events.sort_unstable();
        let keys: Vec<_> = events.iter().map(|e| (e.time.0, e.inst, e.node, e.seq)).collect();
        assert_eq!(
            keys,
            vec![(3, 1, 1, 8), (3, 1, 2, 3), (3, 1, 2, 4), (3, 7, 0, 0), (5, 0, 0, 9)]
        );
        // Payload differences do not affect equality.
        let mut a = ev(3, 1, 1, 8);
        a.dur_ns = 999;
        a.col = 2;
        assert_eq!(a, events[0]);
    }

    /// ViewScratch hands the same allocation back and forth without
    /// leaking borrowed views — exercised under Miri in CI.
    #[test]
    fn view_scratch_recycles_allocation() {
        use dssoc_platform::presets::zcu102;

        let mut scratch = ViewScratch::default();
        let platform = zcu102(2, 1);
        let mut views = scratch.take();
        assert!(views.is_empty());
        views.extend(platform.pes.iter().map(|pe| PeView {
            pe,
            idle: true,
            available_at: SimTime::ZERO,
        }));
        assert_eq!(views.len(), 3);
        let cap = views.capacity();
        let ptr = views.as_ptr() as usize;
        scratch.put(views);

        // Second borrow scope: same allocation, fresh lifetime.
        let platform2 = zcu102(1, 0);
        let mut views = scratch.take();
        assert!(views.is_empty());
        assert_eq!(views.capacity(), cap);
        assert_eq!(views.as_ptr() as usize, ptr);
        views.extend(platform2.pes.iter().map(|pe| PeView {
            pe,
            idle: false,
            available_at: SimTime(7),
        }));
        assert_eq!(views.len(), 1);
        scratch.put(views);
    }

    /// reset() keeps capacity on every buffer — the across-runs
    /// allocation-free guarantee.
    #[test]
    fn reset_retains_capacity() {
        let mut s = DesScratch::default();
        s.inst_base.extend(0..100);
        s.remaining_preds.extend(0..100);
        s.remaining_tasks.extend(0..100);
        s.arrival_order.extend((0..100).map(|i| (SimTime(i), i as u32)));
        for i in 0..100 {
            s.done.push(i, 0, 0, 0, i as u64, 1);
            s.events.push(ev(i as u64, i, 0, i as u64));
        }
        s.due.push(ev(1, 0, 0, 0));
        s.assignments.push(Assignment { ready_idx: 0, pe: dssoc_platform::pe::PeId(0) });
        let caps = (s.inst_base.capacity(), s.arrival_order.capacity(), s.done.inst.capacity());
        s.reset();
        assert_eq!(s.inst_base.len(), 0);
        assert_eq!(s.done.len(), 0);
        assert!(s.events.is_empty());
        assert_eq!(
            (s.inst_base.capacity(), s.arrival_order.capacity(), s.done.inst.capacity()),
            caps
        );
        // Refill after reset: still works, no stale state.
        s.events.push(ev(3, 1, 1, 0));
        s.events.push(ev(2, 0, 0, 1));
        assert_eq!(s.events.pop_min().map(|e| e.time.0), Some(2));
        assert_eq!(s.events.pop_min().map(|e| e.time.0), Some(3));
    }
}
