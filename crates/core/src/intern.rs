//! Interned names for the per-task hot path.
//!
//! Both engines record three display names per completed task — the
//! application, the DAG node, and the runfunc that executed. Cloning
//! `String`s for those on every completion made name bookkeeping the
//! dominant allocation source of the DES event loop (three mallocs plus
//! memcpy per task). A [`Name`] is an `Arc<str>` newtype: cloning one is
//! an atomic increment, equality short-circuits on pointer identity, and
//! every consumer that compared against `&str`/`String` keeps working.
//!
//! [`Interner`] deduplicates the underlying allocations within one run;
//! [`NameTable`] precomputes every name an engine can need — per spec,
//! per DAG node, per PE — at run start, so the steady-state loop does
//! hash-map lookups and `Arc` clones only.

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dssoc_appmodel::app::ApplicationSpec;
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_platform::pe::{PeId, PlatformConfig};

/// A cheaply clonable, interned string (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name(Arc<str>);

impl Name {
    /// The name as a plain string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name(Arc::from(s))
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_str()
    }
}

/// Deduplicating [`Name`] factory: equal strings intern to the same
/// allocation.
#[derive(Debug, Default)]
pub struct Interner {
    set: HashSet<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interned [`Name`] for `s`, allocating only on first sight.
    pub fn intern(&mut self, s: &str) -> Name {
        match self.set.get(s) {
            Some(a) => Name(Arc::clone(a)),
            None => {
                let a: Arc<str> = Arc::from(s);
                self.set.insert(Arc::clone(&a));
                Name(a)
            }
        }
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Per-run name cache: every app, node, and runfunc name an engine can
/// emit, precomputed once per distinct [`ApplicationSpec`] (instances
/// map to their spec's entry, so cost is independent of instance count).
///
/// Instance and PE ids index dense vectors (both are small integers in
/// practice — instances are numbered `0..n`, PE ids come from platform
/// descriptors), so the per-completion lookups never hash.
#[derive(Debug)]
pub struct NameTable {
    specs: Vec<SpecNames>,
    /// `instance id -> spec index` (dense; unknown ids out of range).
    by_instance: Vec<u32>,
    /// `PeId -> column in the runfunc tables`, `NO_COLUMN` for ids the
    /// platform does not contain.
    pe_column: Vec<u32>,
}

const NO_COLUMN: u32 = u32::MAX;

#[derive(Debug)]
struct SpecNames {
    app: Name,
    nodes: Vec<Name>,
    /// `[node_idx][pe column]` — the runfunc `node_idx` executes on that
    /// PE, `None` when the node does not support the PE's platform.
    runfuncs: Vec<Vec<Option<Name>>>,
}

impl NameTable {
    /// Precomputes the names for one run's instances on `platform`.
    pub fn build(
        instances: &[Arc<AppInstance>],
        platform: &PlatformConfig,
        interner: &mut Interner,
    ) -> Self {
        let pe_top = platform.pes.iter().map(|pe| pe.id.0 as usize + 1).max().unwrap_or(0);
        let mut pe_column = vec![NO_COLUMN; pe_top];
        for (i, pe) in platform.pes.iter().enumerate() {
            pe_column[pe.id.0 as usize] = i as u32;
        }
        let mut specs: Vec<SpecNames> = Vec::new();
        let mut by_spec: HashMap<*const ApplicationSpec, u32> = HashMap::new();
        let inst_top = instances.iter().map(|i| i.id.0 as usize + 1).max().unwrap_or(0);
        let mut by_instance = vec![0u32; inst_top];
        for inst in instances {
            let idx = *by_spec.entry(Arc::as_ptr(&inst.spec)).or_insert_with(|| {
                specs.push(SpecNames::build(&inst.spec, platform, interner));
                (specs.len() - 1) as u32
            });
            by_instance[inst.id.0 as usize] = idx;
        }
        NameTable { specs, by_instance, pe_column }
    }

    /// Number of distinct [`ApplicationSpec`]s in the table. Spec
    /// indices are assigned in first-encounter order over the instance
    /// slice passed to [`Self::build`], `0..spec_count()`.
    pub fn spec_count(&self) -> usize {
        self.specs.len()
    }

    /// The spec index `inst` maps to (see [`Self::spec_count`]). Engines
    /// use this to key their own per-spec precomputed tables.
    pub fn spec_index(&self, inst: InstanceId) -> usize {
        self.by_instance[inst.0 as usize] as usize
    }

    /// The column `pe` occupies in per-PE tables (its position in
    /// `platform.pes`), or `None` for ids the platform does not contain.
    pub fn pe_column(&self, pe: PeId) -> Option<usize> {
        match self.pe_column.get(pe.0 as usize) {
            Some(&c) if c != NO_COLUMN => Some(c as usize),
            _ => None,
        }
    }

    fn spec(&self, inst: InstanceId) -> &SpecNames {
        &self.specs[self.spec_index(inst)]
    }

    /// The application name of `inst`.
    pub fn app(&self, inst: InstanceId) -> &Name {
        &self.spec(inst).app
    }

    /// The display name of `inst`'s DAG node `node_idx`.
    pub fn node(&self, inst: InstanceId, node_idx: usize) -> &Name {
        &self.spec(inst).nodes[node_idx]
    }

    /// The runfunc `inst`'s node `node_idx` executes on `pe` (`None`
    /// when the node does not support that PE's platform).
    pub fn runfunc(&self, inst: InstanceId, node_idx: usize, pe: PeId) -> Option<&Name> {
        let col = self.pe_column(pe)?;
        self.spec(inst).runfuncs[node_idx][col].as_ref()
    }

    /// [`Self::runfunc`] addressed by spec index and PE column directly —
    /// the form the SoA flattener walks (it iterates specs, not
    /// instances, and already holds the column).
    pub(crate) fn runfunc_by_spec(
        &self,
        spec: usize,
        node_idx: usize,
        col: usize,
    ) -> Option<&Name> {
        self.specs[spec].runfuncs[node_idx][col].as_ref()
    }
}

impl SpecNames {
    fn build(
        spec: &ApplicationSpec,
        platform: &PlatformConfig,
        interner: &mut Interner,
    ) -> SpecNames {
        SpecNames {
            app: interner.intern(&spec.name),
            nodes: spec.nodes.iter().map(|n| interner.intern(&n.name)).collect(),
            runfuncs: spec
                .nodes
                .iter()
                .map(|n| {
                    platform
                        .pes
                        .iter()
                        .map(|pe| n.platform(&pe.platform_key).map(|p| interner.intern(&p.runfunc)))
                        .collect()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compare_like_strings() {
        let mut i = Interner::new();
        let a = i.intern("fft_256");
        let b = i.intern("fft_256");
        assert_eq!(a, b);
        assert_eq!(a, "fft_256");
        assert_eq!("fft_256", a.clone());
        assert_eq!(a, String::from("fft_256"));
        assert_eq!(a.as_str(), "fft_256");
        assert!(a.starts_with("fft"), "Deref to str works");
        assert_eq!(format!("{a}"), "fft_256");
        assert_eq!(i.len(), 1, "equal strings share one allocation");
        assert!(Name::default().is_empty());
    }

    #[test]
    fn interner_dedups_allocations() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("x");
        let c = i.intern("y");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same backing allocation");
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn names_order_and_hash_by_content() {
        use std::collections::HashMap;
        let mut i = Interner::new();
        let mut m: HashMap<Name, u32> = HashMap::new();
        m.insert(i.intern("b"), 2);
        m.insert(i.intern("a"), 1);
        // Borrow<str> lets the map be queried with plain &str.
        assert_eq!(m.get("a"), Some(&1));
        let mut keys: Vec<&Name> = m.keys().collect();
        keys.sort();
        assert_eq!(keys, ["a", "b"]);
    }
}
