//! Engine-agnostic scheduling core shared by the threaded emulator
//! ([`crate::engine::Emulation`]) and the discrete-event baseline
//! ([`crate::des::DesSimulator`]).
//!
//! Both engines execute the same policy logic — the paper's workload-
//! manager phases of tracking instance progress, maintaining the ready
//! list, invoking the scheduler, and enforcing its contract — and only
//! differ in how time advances and where task durations come from. This
//! module owns that common logic so the two engines cannot drift apart:
//!
//! * [`ReadyList`] — the ready-task queue with its consumed-prefix
//!   offset and reclamation rule (the paper's flat-FRFS-overhead trick),
//! * [`InstanceTracker`] — per-instance predecessor and remaining-task
//!   counts, turning completions into newly ready tasks and finished
//!   applications,
//! * [`PeSlots`] — the busy-PE map plus the reservation queues of the
//!   future-work work-queue feature,
//! * [`CompletionSink`] — the statistics accumulator feeding
//!   [`EmulationStats`],
//! * [`preflight_compat`] / [`validate_assignments`] — the deadlock
//!   guard and the scheduler-contract check.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::instance::AppInstance;
use dssoc_appmodel::workload::Workload;
use dssoc_platform::pe::{PeDescriptor, PeId, PlatformConfig};
use dssoc_trace::{EventKind as TraceKind, FaultKind, TraceSink, TraceWriter};

use crate::engine::EmuError;
use crate::fault::FaultState;
use crate::intern::{Name, NameTable};
use crate::metrics::{ExecMetrics, OverheadPhase};
use crate::sched::{Assignment, PeView};
use crate::stats::{
    AppRecord, DenseTaskLog, EmulationStats, OverheadBreakdown, ReliabilityCounters, TaskLog,
    TaskRecord,
};
use crate::task::{ReadyTask, Task};
use crate::time::SimTime;

/// Optional per-run trace recording handle shared by the pieces of one
/// engine loop (the loop itself, its [`ReadyList`], its
/// [`CompletionSink`]).
///
/// Disabled is the common case and costs one branch per would-be event.
/// Enabled, all clones share one [`TraceWriter`] (and therefore one
/// ring) via `Rc` — the engine loop is single-threaded, and `Rc` keeps
/// it that way: the tracer cannot be sent to another thread, which is
/// exactly the single-producer discipline the ring requires.
#[derive(Debug, Clone, Default)]
pub struct ExecTracer {
    writer: Option<Rc<TraceWriter>>,
}

impl ExecTracer {
    /// The no-op tracer (what untraced runs use).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer recording through a new producer named `producer` on
    /// `sink`'s session.
    pub fn attach(sink: &TraceSink, producer: &str) -> Self {
        ExecTracer { writer: Some(Rc::new(sink.writer(producer))) }
    }

    /// True when events are being recorded (lets callers skip building
    /// event payloads entirely).
    pub fn enabled(&self) -> bool {
        self.writer.is_some()
    }

    /// Records one event at emulation time `at` (no-op when disabled).
    #[inline]
    pub fn emit(&self, at: SimTime, kind: TraceKind) {
        if let Some(w) = &self.writer {
            w.emit(at.0, kind);
        }
    }
}

/// The bit representing a PE in a [`SchedDecision`] candidate/chosen
/// bitmask. Platforms with more than 64 PEs fold the tail onto bit 63 —
/// the masks are decision provenance, not an exact set at that scale.
///
/// [`SchedDecision`]: dssoc_trace::EventKind::SchedDecision
pub fn pe_mask_bit(pe: PeId) -> u64 {
    1u64 << pe.0.min(63)
}

/// Registers one traced run's display metadata — policy name, PE names,
/// task and application labels — with the session. Both engines call
/// this once at run start, so exports from either engine resolve ids to
/// identical names.
pub fn register_trace_meta(
    sink: &TraceSink,
    platform: &PlatformConfig,
    policy: &str,
    instances: &[Arc<AppInstance>],
) {
    sink.set_policy(policy);
    for pe in &platform.pes {
        sink.set_pe(pe.id.0, &pe.name, !pe.kind.is_cpu());
    }
    // One node-name table per distinct spec; instances just map to it,
    // so registration stays cheap for workloads with many instances.
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for inst in instances {
        sink.register_instance(inst.id.0, &inst.spec.name);
        if seen.insert(&inst.spec.name) {
            sink.register_app(
                &inst.spec.name,
                inst.spec.nodes.iter().map(|n| n.name.clone()).collect(),
            );
        }
    }
}

/// Pre-flight deadlock guard shared by both engines: every node of every
/// requested application must have at least one compatible PE in the
/// platform, or the run would stall with permanently unschedulable
/// tasks.
pub fn preflight_compat(
    platform: &PlatformConfig,
    workload: &Workload,
    library: &AppLibrary,
) -> Result<(), EmuError> {
    let mut seen_apps: Vec<&str> = workload.entries.iter().map(|e| e.app_name.as_str()).collect();
    seen_apps.sort_unstable();
    seen_apps.dedup();
    for app in &seen_apps {
        let spec = library.get(app)?;
        for node in &spec.nodes {
            if !platform.pes.iter().any(|pe| node.supports(&pe.platform_key)) {
                return Err(EmuError::Config(format!(
                    "node '{}' of app '{}' supports none of the platform's PE types",
                    node.name, app
                )));
            }
        }
    }
    Ok(())
}

/// The ready-task list: a `Vec` with a consumed-prefix offset.
///
/// FRFS dispatches prefixes, so the common case is O(1) bookkeeping and
/// scheduling overhead stays flat no matter how long the queue gets
/// (paper Fig. 10b). Arbitrary-index removal (MET/EFT) compacts in one
/// pass while preserving readiness (`seq`) order, and the consumed
/// prefix is reclaimed once it dominates the buffer.
#[derive(Debug, Default)]
pub struct ReadyList {
    items: Vec<ReadyTask>,
    head: usize,
    seq: u64,
    tracer: ExecTracer,
    metrics: ExecMetrics,
}

impl ReadyList {
    /// Prefix length below which reclamation is never attempted.
    const RECLAIM_MIN: usize = 1024;

    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// A list wrapping a recycled backing buffer (cleared here), so warm
    /// engines keep the ready list's capacity across runs. Pair with
    /// [`Self::into_buffer`] at end of run.
    pub fn recycled(mut buf: Vec<ReadyTask>) -> Self {
        buf.clear();
        ReadyList { items: buf, ..Self::default() }
    }

    /// Surrenders the backing buffer for reuse by a later
    /// [`Self::recycled`] call. Pending entries (there are none at a
    /// normal end of run) are dropped with the wrapper.
    pub fn into_buffer(self) -> Vec<ReadyTask> {
        self.items
    }

    /// Installs the run's tracer. [`Self::push`] is the single funnel
    /// every newly ready task passes through in both engines, so this is
    /// where `task_ready` events come from.
    pub fn set_tracer(&mut self, tracer: ExecTracer) {
        self.tracer = tracer;
    }

    /// Installs the run's metrics handle; [`Self::push`] also funnels
    /// the ready-depth gauge and histogram samples.
    pub fn set_metrics(&mut self, metrics: ExecMetrics) {
        self.metrics = metrics;
    }

    /// Appends a newly ready task, assigning the next sequence number.
    pub fn push(&mut self, task: Task, ready_at: SimTime) {
        self.tracer.emit(
            ready_at,
            TraceKind::TaskReady { instance: task.instance.id.0, node: task.node_idx as u32 },
        );
        self.items.push(ReadyTask { task, ready_at, seq: self.seq });
        self.seq += 1;
        self.metrics.task_ready(self.len());
    }

    /// Appends all root nodes of a newly arrived instance.
    pub fn push_roots(&mut self, inst: &Arc<AppInstance>, at: SimTime) {
        for &r in &inst.spec.roots {
            self.push(Task { instance: Arc::clone(inst), node_idx: r }, at);
        }
    }

    /// The tasks currently awaiting dispatch, in readiness order. The
    /// scheduler contract's `ready_idx` indexes into this slice.
    pub fn pending(&self) -> &[ReadyTask] {
        &self.items[self.head..]
    }

    /// Number of tasks awaiting dispatch.
    pub fn len(&self) -> usize {
        self.items.len() - self.head
    }

    /// True if no task awaits dispatch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes dispatched entries. `assignments` must be sorted by
    /// ascending `ready_idx` (indices into [`Self::pending`]). The
    /// common (FRFS) case is a prefix: O(1) head advance; arbitrary
    /// indices compact in one order-preserving pass.
    pub fn remove(&mut self, assignments: &[Assignment]) {
        debug_assert!(assignments.windows(2).all(|w| w[0].ready_idx < w[1].ready_idx));
        self.metrics.tasks_unready(assignments.len());
        let is_prefix = assignments.iter().enumerate().all(|(k, a)| a.ready_idx == k);
        if is_prefix {
            self.head += assignments.len();
        } else if !assignments.is_empty() {
            let mut k = 0usize; // next dispatched assignment
            let mut write = self.head;
            for (idx, read) in (self.head..self.items.len()).enumerate() {
                let dispatched = k < assignments.len() && assignments[k].ready_idx == idx;
                if dispatched {
                    k += 1;
                } else {
                    self.items.swap(read, write);
                    write += 1;
                }
            }
            self.items.truncate(write);
        }
        // Reclaim the consumed prefix once it dominates.
        if self.head > Self::RECLAIM_MIN && self.head * 2 > self.items.len() {
            self.items.drain(..self.head);
            self.head = 0;
        }
    }

    #[cfg(test)]
    pub(crate) fn buffer_len(&self) -> usize {
        self.items.len()
    }
}

/// Per-instance DAG progress: predecessor counts, remaining tasks, and
/// arrival times. Completions flow through [`Self::complete_task`],
/// which unblocks successors into the [`ReadyList`] and reports
/// finished applications.
///
/// Instance ids are dense (both `Workload::instantiate` flavours number
/// instances `0..n`), so state lives in a plain `Vec` indexed by id —
/// completion bookkeeping never hashes.
#[derive(Debug)]
pub struct InstanceTracker {
    states: Vec<Option<InstanceState>>,
}

#[derive(Debug)]
struct InstanceState {
    remaining_preds: Vec<usize>,
    remaining_tasks: usize,
    arrival: SimTime,
    app: Name,
}

impl InstanceTracker {
    /// Builds tracking state for a run's instances. The app names in
    /// `names` are carried into the [`AppRecord`]s this tracker emits,
    /// so completion bookkeeping never clones a `String`.
    pub fn new(instances: &[Arc<AppInstance>], names: &NameTable) -> Self {
        let top = instances.iter().map(|inst| inst.id.0 as usize + 1).max().unwrap_or(0);
        let mut states: Vec<Option<InstanceState>> = Vec::new();
        states.resize_with(top, || None);
        for inst in instances {
            states[inst.id.0 as usize] = Some(InstanceState {
                remaining_preds: inst.spec.nodes.iter().map(|n| n.predecessors.len()).collect(),
                remaining_tasks: inst.spec.nodes.len(),
                arrival: SimTime::from_duration(inst.arrival),
                app: names.app(inst.id).clone(),
            });
        }
        InstanceTracker { states }
    }

    /// Records `task` finishing at `finish`: successors whose
    /// predecessors are now all complete join the ready list, and the
    /// finished application (if this was its last task) is returned.
    pub fn complete_task(
        &mut self,
        task: &Task,
        finish: SimTime,
        ready: &mut ReadyList,
    ) -> Option<AppRecord> {
        self.complete(&task.instance, task.node_idx, finish, ready)
    }

    /// [`Self::complete_task`] without the `Task` wrapper, for engines
    /// that track completions as `(instance, node)` pairs.
    pub fn complete(
        &mut self,
        instance: &Arc<AppInstance>,
        node_idx: usize,
        finish: SimTime,
        ready: &mut ReadyList,
    ) -> Option<AppRecord> {
        let state = self.states[instance.id.0 as usize].as_mut().expect("known instance");
        for &s in &instance.spec.nodes[node_idx].successors {
            state.remaining_preds[s] -= 1;
            if state.remaining_preds[s] == 0 {
                ready.push(Task { instance: Arc::clone(instance), node_idx: s }, finish);
            }
        }
        state.remaining_tasks -= 1;
        (state.remaining_tasks == 0).then(|| AppRecord {
            instance: instance.id,
            app: state.app.clone(),
            arrival: state.arrival,
            finish,
            task_count: instance.spec.nodes.len(),
        })
    }
}

/// The busy-PE map plus reservation queues (the paper's proposed
/// PE-level work queues): which PEs have work in flight, when they are
/// projected to free up, and which tasks are queued behind them.
///
/// Backed by dense vectors indexed by [`PeId`] (slots grow on demand, so
/// sparse id spaces still work): the engines query this structure
/// several times per PE per scheduler invocation, and vector indexing
/// keeps those queries branch-plus-load instead of a hash each.
#[derive(Debug)]
pub struct PeSlots {
    busy: Vec<Option<SimTime>>,         // projected (or exact) finish, by PeId
    reserved: Vec<VecDeque<ReadyTask>>, // by PeId; empty until reserve()
    failed: Vec<bool>,                  // quarantined PEs, by PeId
    busy_count: usize,
    failed_count: usize,
    depth: usize,
    total: usize,
    metrics: ExecMetrics,
}

impl PeSlots {
    /// All-idle state for `total` PEs with reservation-queue `depth`.
    pub fn new(total: usize, depth: usize) -> Self {
        PeSlots {
            busy: vec![None; total],
            reserved: Vec::new(),
            failed: vec![false; total],
            busy_count: 0,
            failed_count: 0,
            depth,
            total,
            metrics: ExecMetrics::disabled(),
        }
    }

    /// Installs the run's metrics handle; busy/idle/quarantine
    /// transitions drive the PE gauges from here in both engines.
    pub fn set_metrics(&mut self, metrics: ExecMetrics) {
        self.metrics = metrics;
    }

    /// The configured reservation-queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of PEs with work in flight.
    pub fn busy_count(&self) -> usize {
        self.busy_count
    }

    /// True when no PE has work in flight.
    pub fn all_idle(&self) -> bool {
        self.busy_count == 0
    }

    /// True if `pe` has work in flight.
    pub fn is_busy(&self, pe: PeId) -> bool {
        self.busy.get(pe.0 as usize).is_some_and(Option::is_some)
    }

    /// The PEs currently executing (ascending id order).
    pub fn busy_pes(&self) -> Vec<PeId> {
        self.busy.iter().enumerate().filter_map(|(i, b)| b.map(|_| PeId(i as u32))).collect()
    }

    /// Tasks queued behind `pe`'s running task.
    pub fn queued(&self, pe: PeId) -> usize {
        self.reserved.get(pe.0 as usize).map_or(0, VecDeque::len)
    }

    /// True if `pe` is quarantined (the fault-injection availability
    /// mask every scheduler must respect).
    pub fn is_failed(&self, pe: PeId) -> bool {
        self.failed.get(pe.0 as usize).copied().unwrap_or(false)
    }

    /// Number of quarantined PEs.
    pub fn failed_count(&self) -> usize {
        self.failed_count
    }

    /// Quarantines `pe`: it never reports idle again, so the scheduler
    /// contract forbids assigning to it for the rest of the run.
    pub fn fail(&mut self, pe: PeId) {
        let idx = pe.0 as usize;
        if idx >= self.failed.len() {
            self.failed.resize(idx + 1, false);
        }
        if !self.failed[idx] {
            self.failed[idx] = true;
            self.failed_count += 1;
            self.metrics.pe_quarantined();
        }
    }

    /// Drains `pe`'s reservation queue (tasks queued behind a task that
    /// just faulted must re-enter the ready list when the PE is
    /// quarantined).
    pub fn take_reserved(&mut self, pe: PeId) -> VecDeque<ReadyTask> {
        self.reserved.get_mut(pe.0 as usize).map(std::mem::take).unwrap_or_default()
    }

    /// True if the scheduler may assign to `pe`: not quarantined, and
    /// idle or busy with reservation-queue room.
    pub fn has_room(&self, pe: PeId) -> bool {
        !self.is_failed(pe) && (!self.is_busy(pe) || self.queued(pe) < self.depth)
    }

    /// True if any PE can accept an assignment right now.
    pub fn any_schedulable(&self) -> bool {
        if self.failed_count == 0 {
            self.busy_count < self.total
                || (self.depth > 0
                    && self
                        .busy
                        .iter()
                        .enumerate()
                        .any(|(i, b)| b.is_some() && self.queued(PeId(i as u32)) < self.depth))
        } else {
            (0..self.total as u32).any(|i| self.has_room(PeId(i)))
        }
    }

    /// When `pe` is projected to become available (`now` when idle).
    pub fn available_at(&self, pe: PeId, now: SimTime) -> SimTime {
        self.busy.get(pe.0 as usize).copied().flatten().unwrap_or(now)
    }

    /// The scheduler's view of one PE, with the shared idle semantics
    /// (a busy PE with queue room is schedulable).
    pub fn view<'a>(&self, pe: &'a PeDescriptor, now: SimTime) -> PeView<'a> {
        PeView { pe, idle: self.has_room(pe.id), available_at: self.available_at(pe.id, now) }
    }

    /// Marks `pe` busy until `finish`.
    pub fn occupy(&mut self, pe: PeId, finish: SimTime) {
        let idx = pe.0 as usize;
        if idx >= self.busy.len() {
            self.busy.resize(idx + 1, None);
        }
        if self.busy[idx].replace(finish).is_none() {
            self.busy_count += 1;
            self.metrics.pe_busy();
        }
    }

    /// Extends `pe`'s projected finish by `by` (a reservation joined its
    /// queue).
    pub fn extend(&mut self, pe: PeId, by: Duration) {
        if let Some(Some(t)) = self.busy.get_mut(pe.0 as usize) {
            *t += by;
        }
    }

    /// Queues a task behind `pe`'s running task. Invariant: only valid
    /// while the PE is busy and its queue has room.
    pub fn reserve(&mut self, pe: PeId, rt: ReadyTask) {
        debug_assert!(self.is_busy(pe) && self.queued(pe) < self.depth);
        let idx = pe.0 as usize;
        if idx >= self.reserved.len() {
            self.reserved.resize_with(idx + 1, VecDeque::new);
        }
        self.reserved[idx].push_back(rt);
    }

    /// Handles `pe`'s completion: pops its next reserved task (the PE
    /// stays busy and starts it immediately), or marks it idle.
    pub fn release(&mut self, pe: PeId) -> Option<ReadyTask> {
        let next = self.reserved.get_mut(pe.0 as usize).and_then(VecDeque::pop_front);
        if next.is_none() {
            if let Some(slot) = self.busy.get_mut(pe.0 as usize) {
                if slot.take().is_some() {
                    self.busy_count -= 1;
                    self.metrics.pe_idle();
                }
            }
        }
        next
    }
}

/// Enforces the scheduler contract on one batch of assignments before
/// any state is touched: indices in bounds, PEs with room, no double
/// assignment of a PE or a task, platform compatibility. Both engines
/// run exactly this check.
///
/// Allocation-free: duplicate detection scans the already-validated
/// prefix of `assignments` instead of building side tables. Batches are
/// bounded by the PE count (times queue depth), so the scan is tiny.
pub fn validate_assignments(
    scheduler_name: &str,
    assignments: &[Assignment],
    pending: &[ReadyTask],
    slots: &PeSlots,
    platform: &PlatformConfig,
) -> Result<(), EmuError> {
    validate_assignments_with(scheduler_name, assignments, pending, slots, |rt, pe| {
        platform.pes.iter().any(|p| p.id == pe && rt.task.supports(&p.platform_key))
    })
}

/// [`validate_assignments`] with a caller-supplied compatibility test.
/// The default test walks the platform's PE descriptors and compares
/// platform-key strings; engines holding precomputed compatibility
/// tables (the DES SoA cost slabs, where a sentinel marks incompatible
/// pairs) pass an O(1) array probe instead. `compat(rt, pe)` must also
/// reject PEs the platform does not contain.
pub fn validate_assignments_with(
    scheduler_name: &str,
    assignments: &[Assignment],
    pending: &[ReadyTask],
    slots: &PeSlots,
    compat: impl Fn(&ReadyTask, PeId) -> bool,
) -> Result<(), EmuError> {
    for (k, a) in assignments.iter().enumerate() {
        // Assignments earlier in this batch targeting the same PE: they
        // consume reservation-queue room (busy PE) or the PE itself.
        let same_pe_before = assignments[..k].iter().filter(|b| b.pe == a.pe).count();
        let room = if slots.is_busy(a.pe) {
            slots.queued(a.pe) + same_pe_before < slots.depth()
        } else {
            same_pe_before == 0
        };
        let ok = a.ready_idx < pending.len()
            && room
            && !slots.is_failed(a.pe)
            && !assignments[..k].iter().any(|b| b.ready_idx == a.ready_idx)
            && compat(&pending[a.ready_idx], a.pe);
        if !ok {
            return Err(EmuError::Config(format!(
                "scheduler '{scheduler_name}' violated the assignment contract ({a:?})"
            )));
        }
    }
    Ok(())
}

/// Statistics accumulator shared by both engines: task and application
/// records, per-PE busy time, overhead, and invocation counts, folded
/// into an [`EmulationStats`] when the run ends.
#[derive(Debug, Default)]
pub struct CompletionSink {
    tasks: Vec<TaskRecord>,
    apps: Vec<AppRecord>,
    // Linear-scan map: platforms have a handful of PEs, so scanning a
    // short vec beats hashing the id on every completion.
    pe_busy: Vec<(PeId, Duration)>,
    tracer: ExecTracer,
    metrics: ExecMetrics,
    /// Accumulated workload-manager overhead.
    pub overhead: OverheadBreakdown,
    /// Number of scheduler invocations.
    pub sched_invocations: u64,
    /// Fault-injection and recovery counters.
    pub reliability: ReliabilityCounters,
}

impl CompletionSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the run's tracer. Every task and application completion
    /// in both engines funnels through this sink, so the `task_slice`
    /// and `app_finish` events the engines emit are structurally
    /// identical — which is what makes event streams diffable across
    /// engines.
    pub fn set_tracer(&mut self, tracer: ExecTracer) {
        self.tracer = tracer;
    }

    /// Installs the run's metrics handle. Like the tracer, every
    /// completion/fault/overhead sample in both engines funnels through
    /// this sink, so the engines publish identical metric families.
    pub fn set_metrics(&mut self, metrics: ExecMetrics) {
        self.metrics = metrics;
    }

    /// One scheduler invocation (also feeds the live counter).
    pub fn note_sched_invocation(&mut self) {
        self.sched_invocations += 1;
        self.metrics.sched_invocation();
    }

    /// Charges `d` of workload-manager overhead to `phase`, in both the
    /// end-of-run breakdown and the live per-phase counters.
    pub fn charge_overhead(&mut self, phase: OverheadPhase, d: Duration) {
        match phase {
            OverheadPhase::Monitor => self.overhead.monitor += d,
            OverheadPhase::Update => self.overhead.update += d,
            OverheadPhase::Schedule => self.overhead.schedule += d,
            OverheadPhase::Dispatch => self.overhead.dispatch += d,
        }
        self.metrics.overhead(phase, d);
    }

    /// Records an application abort (fault recovery ran out of options
    /// for one of its tasks).
    pub fn record_abort(&mut self) {
        self.reliability.apps_aborted += 1;
        self.metrics.abort();
    }

    /// Records an application completing despite injected faults.
    pub fn record_survival(&mut self) {
        self.reliability.apps_completed_despite_faults += 1;
        self.metrics.survival();
    }

    /// Records one finished task, charging its modeled duration to its
    /// PE's busy time.
    pub fn record_task(&mut self, rec: TaskRecord) {
        self.metrics.task_completed(&rec);
        self.tracer.emit(
            rec.finish,
            TraceKind::TaskSlice {
                instance: rec.instance.0,
                node: rec.node_idx as u32,
                pe: rec.pe.0,
                ready_ns: rec.ready_at.0,
                start_ns: rec.start.0,
                finish_ns: rec.finish.0,
            },
        );
        match self.pe_busy.iter_mut().find(|(pe, _)| *pe == rec.pe) {
            Some((_, busy)) => *busy += rec.modeled,
            None => self.pe_busy.push((rec.pe, rec.modeled)),
        }
        self.tasks.push(rec);
    }

    /// Ingests finished tasks whose *live* side effects (the metrics
    /// sample and the `task_slice` trace event) the engine already
    /// emitted inline at completion time. Only the end-of-run
    /// accumulation happens here: PE busy time and the record list.
    ///
    /// The DES batches its completions through struct-of-arrays columns
    /// and materializes the fat records once, after the hot loop; calling
    /// [`Self::record_task`] then would double-count metrics and traces.
    pub fn ingest_tasks(&mut self, tasks: impl IntoIterator<Item = TaskRecord>) {
        let tasks = tasks.into_iter();
        self.tasks.reserve(tasks.size_hint().0);
        for rec in tasks {
            match self.pe_busy.iter_mut().find(|(pe, _)| *pe == rec.pe) {
                Some((_, busy)) => *busy += rec.modeled,
                None => self.pe_busy.push((rec.pe, rec.modeled)),
            }
            self.tasks.push(rec);
        }
    }

    /// Pre-sizes the application record buffer (engines that know the
    /// instance count up front call this once instead of growing it).
    pub fn reserve_apps(&mut self, n: usize) {
        self.apps.reserve(n);
    }

    /// Records one finished application.
    pub fn record_app(&mut self, rec: AppRecord) {
        self.tracer.emit(rec.finish, TraceKind::AppFinish { instance: rec.instance.0 });
        self.metrics.app_completed(&rec);
        self.apps.push(rec);
    }

    /// Records one faulted execution attempt (trace event + per-kind
    /// counters). Faulted attempts produce no [`TaskRecord`] and charge
    /// no PE busy time — the work was lost.
    pub fn record_fault(
        &mut self,
        at: SimTime,
        instance: u64,
        node: usize,
        pe: PeId,
        kind: FaultKind,
    ) {
        self.tracer.emit(at, TraceKind::Fault { instance, node: node as u32, pe: pe.0, kind });
        self.metrics.fault(kind);
        let r = &mut self.reliability;
        r.faults_injected += 1;
        match kind {
            FaultKind::Transient => r.transient_faults += 1,
            FaultKind::Permanent => r.permanent_faults += 1,
            FaultKind::Hang => r.hang_faults += 1,
            FaultKind::Watchdog => r.watchdog_faults += 1,
            FaultKind::Exec => r.exec_faults += 1,
        }
    }

    /// Records one retry grant: the faulted attempt (1-based) will be
    /// re-attempted once the ready list reaches `release`.
    pub fn record_retry(
        &mut self,
        at: SimTime,
        instance: u64,
        node: usize,
        attempt: u32,
        release: SimTime,
    ) {
        self.tracer.emit(
            at,
            TraceKind::Retry { instance, node: node as u32, attempt, release_ns: release.0 },
        );
        self.metrics.retry();
        self.reliability.retries += 1;
    }

    /// Records a PE quarantine at `at` (the fault time, not the
    /// detection time).
    pub fn record_quarantine(&mut self, at: SimTime, pe: PeId) {
        self.tracer.emit(at, TraceKind::Quarantine { pe: pe.0 });
        self.metrics.quarantine();
        self.reliability.pes_quarantined += 1;
    }

    /// Records a degraded dispatch — a retried task landing on a
    /// different PE class than the one it faulted on. `first` is true
    /// the first time this task degrades (the unique-task counter).
    pub fn record_degraded(
        &mut self,
        at: SimTime,
        instance: u64,
        node: usize,
        pe: PeId,
        first: bool,
    ) {
        self.tracer.emit(at, TraceKind::DegradedDispatch { instance, node: node as u32, pe: pe.0 });
        self.metrics.degraded();
        if first {
            self.reliability.tasks_degraded += 1;
        }
    }

    /// Folds the accumulated records into the run's statistics.
    pub fn finish(
        self,
        platform: &PlatformConfig,
        scheduler: String,
        instances: Vec<Arc<AppInstance>>,
    ) -> EmulationStats {
        self.metrics.run_completed(&scheduler);
        let makespan = self
            .apps
            .iter()
            .map(|a| a.finish)
            .chain(self.tasks.iter().map(|t| t.finish))
            .max()
            .unwrap_or(SimTime::ZERO)
            .as_duration();
        EmulationStats {
            platform: platform.name.clone(),
            scheduler,
            makespan,
            tasks: self.tasks.into(),
            apps: self.apps,
            pe_busy: self.pe_busy.into_iter().collect(),
            pe_names: platform.pes.iter().map(|pe| (pe.id, pe.name.clone())).collect(),
            sched_invocations: self.sched_invocations,
            overhead: self.overhead,
            reliability: self.reliability,
            instances,
            app_agg: std::sync::OnceLock::new(),
        }
    }

    /// [`Self::finish`] for the DES fast path: the per-task facts
    /// arrive as dense columns instead of recorded `TaskRecord`s, and
    /// stay dense in the returned stats (see
    /// [`TaskLog`](crate::stats::TaskLog)). PE busy time and makespan
    /// are computed with one pass over the columns — the values are
    /// identical to what recording each task eagerly would have
    /// accumulated.
    pub(crate) fn finish_dense(
        self,
        platform: &PlatformConfig,
        scheduler: String,
        instances: Vec<Arc<AppInstance>>,
        dense: DenseTaskLog,
    ) -> EmulationStats {
        debug_assert!(self.tasks.is_empty(), "fast path records no eager tasks");
        self.metrics.run_completed(&scheduler);
        let cols = &dense.cols;
        // Busy time per column; `seen` keeps the map keyed exactly like
        // the eager path (a PE appears once it ran a task, even a
        // zero-duration one).
        let mut busy = vec![0u64; dense.pes.len()];
        let mut seen = vec![false; dense.pes.len()];
        for k in 0..cols.len() {
            let c = cols.col[k] as usize;
            busy[c] += cols.dur_ns[k];
            seen[c] = true;
        }
        // Completions leave the calendar queue in time order, so the
        // last column entry holds the latest task finish.
        let makespan = self
            .apps
            .iter()
            .map(|a| a.finish)
            .chain(cols.finish_ns.last().map(|&t| SimTime(t)))
            .max()
            .unwrap_or(SimTime::ZERO)
            .as_duration();
        EmulationStats {
            platform: platform.name.clone(),
            scheduler,
            makespan,
            apps: self.apps,
            pe_busy: dense
                .pes
                .iter()
                .zip(busy.iter().zip(seen.iter()))
                .filter(|(_, (_, &s))| s)
                .map(|(&pe, (&ns, _))| (pe, Duration::from_nanos(ns)))
                .collect(),
            pe_names: platform.pes.iter().map(|pe| (pe.id, pe.name.clone())).collect(),
            sched_invocations: self.sched_invocations,
            overhead: self.overhead,
            reliability: self.reliability,
            instances,
            tasks: TaskLog::from_dense(dense),
            app_agg: std::sync::OnceLock::new(),
        }
    }
}

/// Resolves a stall with ready tasks but nothing schedulable, on behalf
/// of either engine's fault-recovery path:
///
/// * every PE quarantined with work remaining → unrecoverable,
///   [`EmuError::Fault`] with the last fault's context;
/// * some ready tasks have no surviving compatible PE → abort their
///   applications (counted once each), drop them from the ready list,
///   and return `Ok(true)` so the engine loop re-evaluates;
/// * otherwise → `Ok(false)`: the remaining tasks *are* schedulable on
///   live PEs, so the stall is a genuine scheduler deadlock and the
///   caller reports its usual deadlock error.
pub fn resolve_unschedulable(
    platform: &PlatformConfig,
    slots: &mut PeSlots,
    ready: &mut ReadyList,
    state: &mut FaultState,
    sink: &mut CompletionSink,
    names: &NameTable,
) -> Result<bool, EmuError> {
    let mut doomed: Vec<Assignment> = Vec::new();
    for (idx, rt) in ready.pending().iter().enumerate() {
        let live = platform
            .pes
            .iter()
            .any(|pe| !slots.is_failed(pe.id) && rt.task.supports(&pe.platform_key));
        if !live {
            // ReadyList::remove only reads ready_idx; the PE field is a
            // placeholder.
            doomed.push(Assignment { ready_idx: idx, pe: PeId(0) });
        }
    }
    if doomed.is_empty() {
        return Ok(false);
    }
    if slots.failed_count() == platform.pes.len() {
        let (instance, node, pe) = state.last_context().unwrap_or((0, 0, PeId(0)));
        let id = dssoc_appmodel::instance::InstanceId(instance);
        return Err(EmuError::Fault {
            app: names.app(id).as_str().to_string(),
            node: names.node(id, node).as_str().to_string(),
            pe: platform
                .pes
                .iter()
                .find(|p| p.id == pe)
                .map_or_else(|| format!("pe{}", pe.0), |p| p.name.clone()),
            reason: format!("every PE is quarantined with {} task(s) still ready", ready.len()),
        });
    }
    for a in &doomed {
        let inst = ready.pending()[a.ready_idx].task.instance.id.0;
        if state.abort(inst) {
            sink.record_abort();
        }
    }
    ready.remove(&doomed);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::ready_tasks;
    use proptest::prelude::*;

    /// Builds a ReadyList of `n` tasks with seq 0..n (reusing a small
    /// task fixture; ordering logic only looks at `seq`).
    fn filled(n: usize) -> ReadyList {
        let fixture = ready_tasks(8, 100.0);
        let mut list = ReadyList::new();
        for i in 0..n {
            list.push(fixture[i % fixture.len()].task.clone(), SimTime(i as u64));
        }
        list
    }

    fn seqs(list: &ReadyList) -> Vec<u64> {
        list.pending().iter().map(|rt| rt.seq).collect()
    }

    #[test]
    fn prefix_removal_advances_head() {
        let mut list = filled(6);
        let asg: Vec<Assignment> =
            (0..2).map(|i| Assignment { ready_idx: i, pe: dssoc_platform::pe::PeId(0) }).collect();
        list.remove(&asg);
        assert_eq!(seqs(&list), vec![2, 3, 4, 5]);
        // Buffer unchanged: prefix removal is O(1).
        assert_eq!(list.buffer_len(), 6);
    }

    #[test]
    fn scattered_removal_compacts_in_order() {
        let mut list = filled(6);
        let asg: Vec<Assignment> = [1usize, 3, 4]
            .iter()
            .map(|&i| Assignment { ready_idx: i, pe: dssoc_platform::pe::PeId(0) })
            .collect();
        list.remove(&asg);
        assert_eq!(seqs(&list), vec![0, 2, 5]);
    }

    #[test]
    fn prefix_is_reclaimed_once_it_dominates() {
        let mut list = filled(3000);
        // Consume 2900 as prefixes of one.
        for _ in 0..2900 {
            list.remove(&[Assignment { ready_idx: 0, pe: dssoc_platform::pe::PeId(0) }]);
        }
        assert_eq!(list.len(), 100);
        assert!(
            list.buffer_len() < 3000,
            "consumed prefix should have been reclaimed (buffer {})",
            list.buffer_len()
        );
        assert_eq!(seqs(&list), (2900..3000).collect::<Vec<u64>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Any interleaving of pushes and (sorted) removals keeps the
        /// pending slice in strictly increasing seq order and removes
        /// exactly the chosen entries — the invariant FRFS relies on.
        fn ready_list_preserves_seq_order(ops in proptest::collection::vec((1u8..6, proptest::prelude::any::<u64>()), 1..40)) {
            let fixture = ready_tasks(8, 100.0);
            let mut list = ReadyList::new();
            let mut model: Vec<u64> = Vec::new();
            let mut next_seq = 0u64;
            for (pushes, mask) in ops {
                for _ in 0..pushes {
                    list.push(fixture[(next_seq % 8) as usize].task.clone(), SimTime(next_seq));
                    model.push(next_seq);
                    next_seq += 1;
                }
                // Remove the pending subset selected by the mask bits.
                let chosen: Vec<usize> =
                    (0..list.len().min(64)).filter(|i| mask & (1 << i) != 0).collect();
                let asg: Vec<Assignment> = chosen
                    .iter()
                    .map(|&i| Assignment { ready_idx: i, pe: dssoc_platform::pe::PeId(0) })
                    .collect();
                let removed: Vec<u64> = chosen.iter().map(|&i| model[i]).collect();
                list.remove(&asg);
                model.retain(|s| !removed.contains(s));
                let got: Vec<u64> = list.pending().iter().map(|rt| rt.seq).collect();
                prop_assert_eq!(&got, &model);
                prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "seq order broken: {:?}", got);
            }
        }
    }

    #[test]
    fn pe_slots_reservation_lifecycle() {
        let pe = dssoc_platform::pe::PeId(7);
        let mut slots = PeSlots::new(2, 1);
        assert!(slots.all_idle() && slots.has_room(pe) && slots.any_schedulable());

        slots.occupy(pe, SimTime(100));
        assert!(slots.is_busy(pe));
        assert_eq!(slots.available_at(pe, SimTime(5)), SimTime(100));
        assert!(slots.has_room(pe), "depth 1 leaves queue room");

        let rt = ready_tasks(1, 100.0).pop().unwrap();
        slots.reserve(pe, rt);
        slots.extend(pe, Duration::from_nanos(50));
        assert_eq!(slots.available_at(pe, SimTime(5)), SimTime(150));
        assert!(!slots.has_room(pe), "queue full at depth 1");
        assert!(slots.any_schedulable(), "the other PE is idle");

        // Completion pops the reservation; the PE stays busy.
        assert!(slots.release(pe).is_some());
        assert!(slots.is_busy(pe), "reservation keeps the PE busy");
        assert!(slots.release(pe).is_none());
        assert!(!slots.is_busy(pe));
    }

    #[test]
    fn pe_slots_failure_mask() {
        let mut slots = PeSlots::new(2, 1);
        let (a, b) = (dssoc_platform::pe::PeId(0), dssoc_platform::pe::PeId(1));
        assert!(!slots.is_failed(a) && slots.failed_count() == 0);

        slots.fail(a);
        slots.fail(a); // idempotent
        assert!(slots.is_failed(a));
        assert_eq!(slots.failed_count(), 1);
        assert!(!slots.has_room(a), "quarantined PEs never have room");
        assert!(slots.any_schedulable(), "the live PE remains schedulable");

        // A quarantined idle PE reports idle=false to the scheduler.
        let cfg = crate::sched::testutil::platform_2c1f();
        assert!(!slots.view(&cfg.pes[0], SimTime(0)).idle);
        assert!(slots.view(&cfg.pes[1], SimTime(0)).idle);

        // Queued work behind a quarantined PE can be reclaimed.
        slots.occupy(b, SimTime(100));
        slots.reserve(b, ready_tasks(1, 100.0).pop().unwrap());
        slots.fail(b);
        assert_eq!(slots.take_reserved(b).len(), 1);
        assert!(slots.take_reserved(b).is_empty());
        assert_eq!(slots.failed_count(), 2);
        assert!(!slots.any_schedulable(), "every PE quarantined");
    }
}
