//! # dssoc-core — the user-space DSSoC emulation runtime
//!
//! Rust reproduction of the runtime presented in *"User-Space Emulation
//! Framework for Domain-Specific SoC Design"* (Mack, Kumbhare, NK, Ogras,
//! Akoglu — IPDPS Workshops 2020, arXiv:2004.01636). The framework
//! emulates a Domain-Specific SoC on commodity hardware: applications are
//! DAGs of real kernels, a *workload manager* injects them over time and
//! schedules ready tasks, and per-PE *resource manager* threads execute
//! them — on emulated CPU cores or on simulated accelerators behind a DMA
//! latency model.
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`engine`] | §II-C, Fig. 3 | workload manager, timing modes, driver |
//! | [`exec`] | §II-C | engine-agnostic scheduling core (ready list, instance tracking, PE slots) |
//! | [`fault`] | — | seeded fault injection + retry/quarantine/degradation recovery |
//! | [`resource`] | §II-D, Fig. 4 | per-PE resource-manager threads, persistent [`resource::ResourcePool`] |
//! | [`handler`] | §II-C | idle/run/complete handler protocol |
//! | [`sched`] | §II-C | FRFS, MET, EFT, RANDOM + `Scheduler` trait |
//! | [`stats`] | §III | task/app records, utilization, overhead |
//! | [`des`] | §III-D | discrete-event baseline (DS3-class) |
//! | [`calq`], [`arena`], [`soa`] | — | DES hot-loop core: calendar queue, warm scratch arena, SoA scenario state |
//! | [`job`] | — | Arc-shared scenario specs, fingerprints, `JobRunner`, result cache |
//! | [`sweep`] | §III | batch sweep API over config × scheduler × workload grids |
//! | [`task`], [`time`] | — | task and emulation-clock primitives |
//!
//! ## Quick start
//!
//! ```
//! use dssoc_core::prelude::*;
//! use dssoc_appmodel::{AppLibrary, KernelRegistry, WorkloadSpec};
//! use dssoc_appmodel::json::AppJson;
//! use dssoc_platform::presets::zcu102;
//!
//! // 1. Register kernels (the "shared object").
//! let mut registry = KernelRegistry::new();
//! registry.register_fn("hello.so", "work", |ctx| {
//!     let n = ctx.read_u32("n")?;
//!     ctx.write_u32("n", n + 1)
//! });
//!
//! // 2. Describe the application in the paper's JSON format.
//! let json = AppJson::from_str(r#"{
//!     "AppName": "hello",
//!     "SharedObject": "hello.so",
//!     "Variables": {"n": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0, "val": [5,0,0,0]}},
//!     "DAG": {"only": {"arguments": ["n"],
//!                       "platforms": [{"name": "cpu", "runfunc": "work"}]}}
//! }"#).unwrap();
//! let mut library = AppLibrary::new();
//! library.register_json(&json, &registry).unwrap();
//!
//! // 3. Generate a validation-mode workload and emulate it on a
//! //    hypothetical 2-core + 1-FFT ZCU102 configuration.
//! let workload = WorkloadSpec::validation([("hello", 3usize)]).generate(&library).unwrap();
//! let mut emulation = Emulation::new(zcu102(2, 1)).unwrap();
//! let stats = emulation.run(&mut FrfsScheduler::new(), &workload, &library).unwrap();
//! assert_eq!(stats.completed_apps(), 3);
//! ```

pub mod arena;
pub mod calq;
pub mod des;
pub mod engine;
pub mod exec;
pub mod fault;
pub mod handler;
pub mod intern;
pub mod job;
pub mod metrics;
pub mod resource;
pub mod sched;
pub mod soa;
pub mod stats;
pub mod sweep;
pub mod task;
pub mod time;

pub use calq::{CalendarQueue, Timed};
pub use soa::{ScenarioSoa, INCOMPATIBLE};

pub use des::{DesConfig, DesSimulator};
pub use engine::{EmuError, Emulation, EmulationConfig, OverheadMode, TimingMode};
pub use exec::{
    pe_mask_bit, register_trace_meta, CompletionSink, ExecTracer, InstanceTracker, PeSlots,
    ReadyList,
};
pub use fault::{
    FaultAction, FaultDecision, FaultPlan, FaultSpec, FaultState, PermanentFault, RateFault,
    RetryPolicy,
};
pub use handler::{PeStatus, ResourceHandler, TaskAssignment, TaskCompletion};
pub use intern::{Interner, Name, NameTable};
pub use job::{
    platform_preset, CompiledScenario, CostSpec, Engine, Fingerprint, JobResult, JobRunner,
    ResultCache, ScenarioBuilder, ScenarioSpec,
};
pub use metrics::{ExecMetrics, OverheadPhase};
pub use resource::{threads_spawned_total, ResourcePool};
pub use sched::{
    Assignment, EftScheduler, EstimateBook, EstimateSlot, FrfsScheduler, MetScheduler, PeView,
    RandomScheduler, SchedContext, Scheduler,
};
pub use stats::{
    AppAggregate, AppRecord, EmulationStats, OverheadBreakdown, ReliabilityCounters,
    StatsPercentiles, TaskRecord,
};
pub use sweep::{
    default_workers, CellResult, DesSweepRunner, ProgressWatcher, SweepCell, SweepProgress,
    SweepProgressSnapshot, SweepRunner,
};
pub use task::{ReadyTask, Task};
pub use time::SimTime;

/// The most commonly used items, re-exported for `use dssoc_core::prelude::*`.
pub mod prelude {
    pub use crate::des::{DesConfig, DesSimulator};
    pub use crate::engine::{EmuError, Emulation, EmulationConfig, OverheadMode, TimingMode};
    pub use crate::fault::{FaultSpec, RetryPolicy};
    pub use crate::job::{
        CompiledScenario, CostSpec, Engine, JobResult, JobRunner, ResultCache, ScenarioSpec,
    };
    pub use crate::sched::{EftScheduler, FrfsScheduler, MetScheduler, RandomScheduler, Scheduler};
    pub use crate::stats::EmulationStats;
    pub use crate::sweep::{
        default_workers, CellResult, DesSweepRunner, SweepCell, SweepProgress, SweepRunner,
    };
    pub use crate::time::SimTime;
}
