//! Emulation statistics.
//!
//! "Before termination, the framework collects the scheduling statistics
//! for all the applications and their tasks. These statistics can later
//! be used to evaluate the performance of the emulated DSSoC." (paper
//! §II-A). Everything the case studies report comes from here: workload
//! execution time (Figs. 9a, 10a, 11), per-PE utilization (Fig. 9b),
//! per-application latency and task counts (Table I), and average
//! scheduling overhead (Fig. 10b).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_metrics::HistogramData;
use dssoc_platform::pe::PeId;

use crate::arena::DoneColumns;
use crate::intern::{Name, NameTable};
use crate::time::SimTime;

/// Performance record of one executed task.
///
/// The name fields are interned [`Name`]s: thousands of records share a
/// handful of allocations, and building a record on the engines' hot
/// path costs three `Arc` clones instead of three `String` clones.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    /// Owning application instance.
    pub instance: InstanceId,
    /// Application name.
    pub app: Name,
    /// DAG node name.
    pub node: Name,
    /// Dense DAG node index within the instance (the id trace events
    /// carry; `node` is its display name).
    pub node_idx: usize,
    /// The runfunc that executed.
    pub kernel: Name,
    /// PE that ran the task.
    pub pe: PeId,
    /// When all predecessors had completed.
    pub ready_at: SimTime,
    /// When the task started on the PE.
    pub start: SimTime,
    /// When the task finished (emulation time).
    pub finish: SimTime,
    /// Modeled execution duration charged to the emulation clock.
    pub modeled: Duration,
    /// Host wall-clock duration of the functional execution.
    pub measured: Duration,
}

impl TaskRecord {
    /// Queueing delay between readiness and dispatch.
    ///
    /// Saturates to zero when `start` precedes `ready_at` rather than
    /// panicking: a reservation-queue chained dispatch starts a task at
    /// the very completion instant that made it ready, and overhead
    /// charging can place the recorded start marginally before the
    /// bookkept readiness time.
    pub fn wait(&self) -> Duration {
        self.start.since(self.ready_at)
    }
}

/// The dense form of a run's per-task records: the six completion
/// columns the DES fast loop appended, plus what it takes to expand
/// them into [`TaskRecord`]s — the scenario's interned [`NameTable`]
/// and the column→[`PeId`] map.
#[derive(Debug, Clone)]
pub(crate) struct DenseTaskLog {
    /// Struct-of-arrays completion facts, in completion order.
    pub cols: DoneColumns,
    /// Interned names of the scenario the columns index into.
    pub names: Arc<NameTable>,
    /// `PE column -> PeId` (platform descriptor order).
    pub pes: Vec<PeId>,
}

impl DenseTaskLog {
    /// Expands the columns into fat records, in the same completion
    /// order (and with the same field values) the eager
    /// `record_task` path would have produced.
    fn materialize(&self) -> Vec<TaskRecord> {
        let c = &self.cols;
        (0..c.len())
            .map(|k| {
                let id = InstanceId(c.inst[k] as u64);
                let node_idx = c.node[k] as usize;
                let col = c.col[k] as usize;
                let spec_idx = self.names.spec_index(id);
                TaskRecord {
                    instance: id,
                    app: self.names.app(id).clone(),
                    node: self.names.node(id, node_idx).clone(),
                    node_idx,
                    kernel: self
                        .names
                        .runfunc_by_spec(spec_idx, node_idx, col)
                        .cloned()
                        .unwrap_or_default(),
                    pe: self.pes[col],
                    ready_at: SimTime(c.ready_ns[k]),
                    start: SimTime(c.finish_ns[k] - c.dur_ns[k]),
                    finish: SimTime(c.finish_ns[k]),
                    modeled: Duration::from_nanos(c.dur_ns[k]),
                    measured: Duration::ZERO,
                }
            })
            .collect()
    }
}

/// Per-task records of one run: either eagerly materialized
/// [`TaskRecord`]s (the threaded engine, and DES runs with a tracer or
/// live metrics attached, record them inline) or the DES fast path's
/// dense completion columns, expanded to records on first access.
///
/// Cheap queries — [`len`](Self::len), [`is_empty`](Self::is_empty) —
/// never materialize. Everything else ([`Deref`]s to `[TaskRecord]`,
/// so iteration/indexing/slicing all work) expands the columns once
/// and caches the result, which is why sweep and job-layer consumers
/// that read only aggregates never pay for 4k `Name` refcounts per run.
#[derive(Debug, Clone, Default)]
pub struct TaskLog {
    dense: Option<DenseTaskLog>,
    records: OnceLock<Vec<TaskRecord>>,
}

impl TaskLog {
    pub(crate) fn from_dense(dense: DenseTaskLog) -> TaskLog {
        TaskLog { dense: Some(dense), records: OnceLock::new() }
    }

    /// Number of task records (without materializing).
    pub fn len(&self) -> usize {
        match (&self.dense, self.records.get()) {
            (Some(d), _) => d.cols.len(),
            (None, Some(r)) => r.len(),
            (None, None) => 0,
        }
    }

    /// True when the run completed no tasks (without materializing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The records as a slice, expanding dense columns on first call.
    pub fn records(&self) -> &[TaskRecord] {
        self.records.get_or_init(|| match &self.dense {
            Some(d) => d.materialize(),
            None => Vec::new(),
        })
    }

    /// Iterates the records (materializing if needed).
    pub fn iter(&self) -> std::slice::Iter<'_, TaskRecord> {
        self.records().iter()
    }
}

impl From<Vec<TaskRecord>> for TaskLog {
    fn from(records: Vec<TaskRecord>) -> TaskLog {
        let log = TaskLog::default();
        let _ = log.records.set(records);
        log
    }
}

impl std::ops::Deref for TaskLog {
    type Target = [TaskRecord];

    fn deref(&self) -> &[TaskRecord] {
        self.records()
    }
}

impl<'a> IntoIterator for &'a TaskLog {
    type Item = &'a TaskRecord;
    type IntoIter = std::slice::Iter<'a, TaskRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records().iter()
    }
}

/// Completion record of one application instance.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Instance id.
    pub instance: InstanceId,
    /// Application name.
    pub app: Name,
    /// Arrival (injection) time.
    pub arrival: SimTime,
    /// Time the last task of the instance finished.
    pub finish: SimTime,
    /// Number of tasks the instance executed.
    pub task_count: usize,
}

impl AppRecord {
    /// End-to-end latency of the instance.
    pub fn latency(&self) -> Duration {
        self.finish.since(self.arrival)
    }
}

/// Scheduling-overhead breakdown, accumulated across workload-manager
/// iterations (the paper's definition: monitoring completion status,
/// updating the ready queue, running the scheduling algorithm, and
/// communicating tasks to the resource managers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Polling resource handlers for completions.
    pub monitor: Duration,
    /// Processing completions and updating the ready list.
    pub update: Duration,
    /// Running the scheduling policy.
    pub schedule: Duration,
    /// Dispatching selected tasks to resource managers.
    pub dispatch: Duration,
}

impl OverheadBreakdown {
    /// Total overhead across all phases.
    pub fn total(&self) -> Duration {
        self.monitor + self.update + self.schedule + self.dispatch
    }
}

/// Fault-injection and recovery counters, accumulated by the shared
/// [`CompletionSink`](crate::exec::CompletionSink) in both engines. All
/// zeros when no fault spec is configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityCounters {
    /// Total faulted execution attempts (all kinds).
    pub faults_injected: u64,
    /// Transient (bad-result) faults.
    pub transient_faults: u64,
    /// Permanent PE failures observed by attempts.
    pub permanent_faults: u64,
    /// Hung attempts caught by the virtual watchdog deadline.
    pub hang_faults: u64,
    /// Wedged resource-manager threads caught by the threaded engine's
    /// wall-clock watchdog.
    pub watchdog_faults: u64,
    /// Real kernel execution errors absorbed by the recovery policy.
    pub exec_faults: u64,
    /// Retry grants issued.
    pub retries: u64,
    /// Distinct tasks that degraded onto another PE class after a fault.
    pub tasks_degraded: u64,
    /// PEs quarantined for the rest of the run.
    pub pes_quarantined: u64,
    /// Application instances given up on (retry budget exhausted or no
    /// surviving compatible PE).
    pub apps_aborted: u64,
    /// Application instances that completed even though at least one of
    /// their task attempts faulted.
    pub apps_completed_despite_faults: u64,
}

/// Per-application aggregate over a run's records: completed instance
/// count, task count, and summed end-to-end latency. Built once per
/// [`EmulationStats`] by [`EmulationStats::app_aggregates`] so the
/// per-app accessors don't rescan the full record vectors on every
/// call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppAggregate {
    /// Completed instances of the application.
    pub instances: usize,
    /// Tasks executed across all its instances.
    pub tasks: usize,
    /// Sum of end-to-end instance latencies.
    pub total_latency: Duration,
}

impl AppAggregate {
    /// Mean end-to-end latency, `None` when no instance completed.
    pub fn latency_mean(&self) -> Option<Duration> {
        if self.instances == 0 {
            None
        } else {
            Some(self.total_latency / self.instances as u32)
        }
    }
}

/// Log2-bucketed percentile view over a run's retained records, in
/// nanoseconds (see [`EmulationStats::percentiles`]). The same
/// [`HistogramData`] arithmetic backs the live metrics families, so
/// offline percentiles from a finished run agree with what a scrape of
/// `dssoc_task_wait_ns` / `dssoc_task_exec_ns` / `dssoc_app_latency_ns`
/// would have reported.
#[derive(Debug, Clone, Default)]
pub struct StatsPercentiles {
    /// Queueing delay between task readiness and dispatch.
    pub task_wait: HistogramData,
    /// Modeled task execution durations.
    pub task_exec: HistogramData,
    /// End-to-end application-instance latencies.
    pub app_latency: HistogramData,
}

/// Everything collected from one emulation run.
#[derive(Debug, Clone)]
pub struct EmulationStats {
    /// Platform name (e.g. `zcu102-3C+2F`).
    pub platform: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Workload execution time: emulation time when the last task
    /// finished.
    pub makespan: Duration,
    /// Per-task records, in completion order (lazily materialized on
    /// the DES fast path — see [`TaskLog`]).
    pub tasks: TaskLog,
    /// Per-application-instance records, in completion order.
    pub apps: Vec<AppRecord>,
    /// Accumulated busy time per PE.
    pub pe_busy: BTreeMap<PeId, Duration>,
    /// PE display names for reporting.
    pub pe_names: BTreeMap<PeId, String>,
    /// Number of scheduler invocations.
    pub sched_invocations: u64,
    /// Scheduling-overhead breakdown (as charged to the emulation clock).
    pub overhead: OverheadBreakdown,
    /// Fault-injection and recovery counters (all zeros without a fault
    /// spec).
    pub reliability: ReliabilityCounters,
    /// The executed application instances, including their final variable
    /// memory — validation mode's functional-verification handle.
    pub instances: Vec<Arc<AppInstance>>,
    /// Lazily-built per-app aggregates (see [`Self::app_aggregates`]).
    pub(crate) app_agg: OnceLock<BTreeMap<Name, AppAggregate>>,
}

impl EmulationStats {
    /// PE utilization: busy time over workload execution time (the
    /// paper's Fig. 9b metric).
    pub fn utilization(&self, pe: PeId) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.pe_busy.get(&pe).map(|b| b.as_secs_f64() / self.makespan.as_secs_f64()).unwrap_or(0.0)
    }

    /// All `(PE, utilization)` pairs in id order.
    pub fn utilizations(&self) -> Vec<(PeId, f64)> {
        self.pe_names.keys().map(|&pe| (pe, self.utilization(pe))).collect()
    }

    /// Average scheduling overhead per scheduler invocation (Fig. 10b).
    pub fn avg_sched_overhead(&self) -> Duration {
        if self.sched_invocations == 0 {
            return Duration::ZERO;
        }
        self.overhead.total() / self.sched_invocations as u32
    }

    /// Per-app aggregates, built on first use with a single pass over
    /// the task and app record vectors. Every per-app accessor reads
    /// this map, so reporting loops that ask about each app in turn
    /// (Table I does) cost O(n + apps·log apps) total instead of
    /// rescanning all n records once per app.
    pub fn app_aggregates(&self) -> &BTreeMap<Name, AppAggregate> {
        self.app_agg.get_or_init(|| {
            let mut map: BTreeMap<Name, AppAggregate> = BTreeMap::new();
            for a in &self.apps {
                let agg = map.entry(a.app.clone()).or_default();
                agg.instances += 1;
                agg.total_latency += a.latency();
            }
            for t in &self.tasks {
                map.entry(t.app.clone()).or_default().tasks += 1;
            }
            map
        })
    }

    /// Mean end-to-end latency of completed instances of `app`.
    pub fn app_latency_mean(&self, app: &str) -> Option<Duration> {
        self.app_aggregates().get(app).and_then(AppAggregate::latency_mean)
    }

    /// Total tasks executed for `app` across all its instances.
    pub fn app_task_count(&self, app: &str) -> usize {
        self.app_aggregates().get(app).map_or(0, |a| a.tasks)
    }

    /// Percentile view over the run's records: log2 histograms of task
    /// wait, modeled task execution, and app latency (nanoseconds).
    /// Built on demand in one pass; use
    /// [`HistogramData::p50`]/[`p90`](HistogramData::p90)/
    /// [`p99`](HistogramData::p99)/`max` on each.
    pub fn percentiles(&self) -> StatsPercentiles {
        let mut view = StatsPercentiles::default();
        for t in &self.tasks {
            view.task_wait.record(t.wait().as_nanos() as u64);
            view.task_exec.record(t.modeled.as_nanos() as u64);
        }
        for a in &self.apps {
            view.app_latency.record(a.latency().as_nanos() as u64);
        }
        view
    }

    /// Number of completed application instances.
    pub fn completed_apps(&self) -> usize {
        self.apps.len()
    }

    /// The final variable memory of one instance (functional
    /// verification after a validation-mode run).
    pub fn instance_memory(&self, id: InstanceId) -> Option<&dssoc_appmodel::memory::AppMemory> {
        self.instances.iter().find(|i| i.id == id).map(|i| i.memory.as_ref())
    }

    /// A compact human-readable summary (used by the examples).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "platform:  {}", self.platform);
        let _ = writeln!(s, "scheduler: {}", self.scheduler);
        let _ = writeln!(s, "makespan:  {:.3} ms", self.makespan.as_secs_f64() * 1e3);
        let _ = writeln!(s, "tasks:     {}   apps: {}", self.tasks.len(), self.apps.len());
        let _ = writeln!(
            s,
            "avg sched overhead: {:.2} us over {} invocations",
            self.avg_sched_overhead().as_secs_f64() * 1e6,
            self.sched_invocations
        );
        for (&pe, name) in &self.pe_names {
            let _ = writeln!(s, "  {name:<8} utilization {:5.1}%", self.utilization(pe) * 100.0);
        }
        let r = &self.reliability;
        if *r != ReliabilityCounters::default() {
            let _ = writeln!(
                s,
                "reliability: {} faults, {} retries, {} degraded, {} PEs quarantined, \
                 {} apps aborted, {} survived faults",
                r.faults_injected,
                r.retries,
                r.tasks_degraded,
                r.pes_quarantined,
                r.apps_aborted,
                r.apps_completed_despite_faults,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_fixture() -> EmulationStats {
        let mut pe_busy = BTreeMap::new();
        pe_busy.insert(PeId(0), Duration::from_millis(8));
        pe_busy.insert(PeId(1), Duration::from_millis(2));
        let mut pe_names = BTreeMap::new();
        pe_names.insert(PeId(0), "Core1".to_string());
        pe_names.insert(PeId(1), "FFT1".to_string());
        EmulationStats {
            platform: "test".into(),
            scheduler: "FRFS".into(),
            makespan: Duration::from_millis(10),
            tasks: vec![
                TaskRecord {
                    instance: InstanceId(0),
                    app: "radar".into(),
                    node: "A".into(),
                    node_idx: 0,
                    kernel: "ka".into(),
                    pe: PeId(0),
                    ready_at: SimTime(0),
                    start: SimTime(1_000),
                    finish: SimTime(2_000),
                    modeled: Duration::from_micros(1),
                    measured: Duration::from_nanos(500),
                },
                TaskRecord {
                    instance: InstanceId(0),
                    app: "radar".into(),
                    node: "B".into(),
                    node_idx: 1,
                    kernel: "kb".into(),
                    pe: PeId(1),
                    ready_at: SimTime(2_000),
                    start: SimTime(2_000),
                    finish: SimTime(3_000),
                    modeled: Duration::from_micros(1),
                    measured: Duration::from_nanos(500),
                },
            ]
            .into(),
            apps: vec![AppRecord {
                instance: InstanceId(0),
                app: "radar".into(),
                arrival: SimTime(0),
                finish: SimTime(3_000),
                task_count: 2,
            }],
            pe_busy,
            pe_names,
            sched_invocations: 4,
            overhead: OverheadBreakdown {
                monitor: Duration::from_micros(1),
                update: Duration::from_micros(1),
                schedule: Duration::from_micros(1),
                dispatch: Duration::from_micros(1),
            },
            reliability: ReliabilityCounters::default(),
            instances: Vec::new(),
            app_agg: OnceLock::new(),
        }
    }

    #[test]
    fn utilization_ratio() {
        let s = stats_fixture();
        assert!((s.utilization(PeId(0)) - 0.8).abs() < 1e-12);
        assert!((s.utilization(PeId(1)) - 0.2).abs() < 1e-12);
        assert_eq!(s.utilization(PeId(9)), 0.0);
        assert_eq!(s.utilizations().len(), 2);
    }

    #[test]
    fn overhead_average() {
        let s = stats_fixture();
        assert_eq!(s.overhead.total(), Duration::from_micros(4));
        assert_eq!(s.avg_sched_overhead(), Duration::from_micros(1));
    }

    #[test]
    fn app_metrics() {
        let s = stats_fixture();
        assert_eq!(s.app_latency_mean("radar"), Some(Duration::from_micros(3)));
        assert_eq!(s.app_latency_mean("wifi"), None);
        assert_eq!(s.app_task_count("radar"), 2);
        assert_eq!(s.completed_apps(), 1);
    }

    #[test]
    fn task_wait_time() {
        let s = stats_fixture();
        assert_eq!(s.tasks[0].wait(), Duration::from_micros(1));
        assert_eq!(s.tasks[1].wait(), Duration::ZERO);
    }

    #[test]
    fn task_wait_saturates_when_start_precedes_readiness() {
        // Regression: a chained reservation dispatch can record a start
        // at (or marginally before) the readiness time; wait() must
        // saturate to zero, never underflow or panic.
        let mut rec = stats_fixture().tasks[0].clone();
        rec.ready_at = SimTime(5_000);
        rec.start = SimTime(4_000);
        assert_eq!(rec.wait(), Duration::ZERO);
    }

    #[test]
    fn zero_makespan_utilization_is_zero() {
        let mut s = stats_fixture();
        s.makespan = Duration::ZERO;
        assert_eq!(s.utilization(PeId(0)), 0.0);
    }

    #[test]
    fn zero_invocations_overhead_is_zero() {
        let mut s = stats_fixture();
        s.sched_invocations = 0;
        assert_eq!(s.avg_sched_overhead(), Duration::ZERO);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let s = stats_fixture();
        let text = s.summary();
        assert!(text.contains("FRFS"));
        assert!(text.contains("Core1"));
        assert!(text.contains("makespan"));
    }

    #[test]
    fn summary_omits_reliability_when_fault_free() {
        let s = stats_fixture();
        assert!(!s.summary().contains("reliability:"));
    }

    #[test]
    fn summary_reports_reliability_when_counters_nonzero() {
        let mut s = stats_fixture();
        s.reliability.faults_injected = 3;
        s.reliability.transient_faults = 2;
        s.reliability.hang_faults = 1;
        s.reliability.retries = 2;
        s.reliability.pes_quarantined = 1;
        s.reliability.apps_completed_despite_faults = 1;
        let text = s.summary();
        assert!(text.contains("reliability: 3 faults"));
        assert!(text.contains("2 retries"));
        assert!(text.contains("1 PEs quarantined"));
        assert!(text.contains("1 survived faults"));
    }

    #[test]
    fn app_aggregates_single_pass_map() {
        let s = stats_fixture();
        let agg = s.app_aggregates();
        assert_eq!(agg.len(), 1);
        let radar = &agg[&Name::from("radar")];
        assert_eq!(radar.instances, 1);
        assert_eq!(radar.tasks, 2);
        assert_eq!(radar.total_latency, Duration::from_micros(3));
        assert_eq!(radar.latency_mean(), Some(Duration::from_micros(3)));
        // Second call returns the cached map (same allocation).
        assert!(std::ptr::eq(agg, s.app_aggregates()));
    }

    #[test]
    fn percentiles_view_over_records() {
        let s = stats_fixture();
        let p = s.percentiles();
        assert_eq!(p.task_wait.count, 2);
        assert_eq!(p.task_exec.count, 2);
        assert_eq!(p.app_latency.count, 1);
        // Waits are 1 us and 0 ns; max is exact.
        assert_eq!(p.task_wait.max, 1_000);
        assert_eq!(p.app_latency.max, 3_000);
        assert!(p.task_exec.p99() >= p.task_exec.p50());
    }
}
