//! Golden-file test for the Chrome trace exporter.
//!
//! The exported JSON must be byte-stable: object keys serialize in
//! alphabetical order (the shim `Value::Object` is a `BTreeMap`) and
//! floats print via Rust's shortest-round-trip `Display`, so the same
//! event stream always produces the same bytes. Regenerate after an
//! intentional schema change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p dssoc-trace --test golden
//! ```

use dssoc_trace::{export, DmaPhase, EventKind, TraceSession};

/// A small deterministic two-PE run: one app, two tasks (CPU then
/// accelerator with DMA phases), one scheduler decision each.
fn fixture() -> TraceSession {
    let session = TraceSession::new();
    let sink = session.sink();
    sink.set_policy("FRFS");
    sink.set_pe(0, "Core1", false);
    sink.set_pe(1, "FFT1", true);
    sink.register_app("radar_1x", vec!["LFM".into(), "FFT_0".into()]);
    sink.register_instance(0, "radar_1x");

    let wm = sink.writer("workload-manager");
    wm.emit(0, EventKind::AppArrive { instance: 0 });
    wm.emit(0, EventKind::TaskReady { instance: 0, node: 0 });
    wm.emit(
        0,
        EventKind::SchedDecision {
            invocation: 1,
            ready: 1,
            candidates: 0b01,
            chosen: 0b01,
            assigned: 1,
        },
    );
    wm.emit(0, EventKind::TaskDispatch { instance: 0, node: 0, pe: 0 });
    wm.emit(0, EventKind::PeBusy { pe: 0 });
    wm.emit(
        1_500,
        EventKind::TaskSlice {
            instance: 0,
            node: 0,
            pe: 0,
            ready_ns: 0,
            start_ns: 0,
            finish_ns: 1_500,
        },
    );
    wm.emit(1_500, EventKind::PeIdle { pe: 0 });
    wm.emit(1_500, EventKind::TaskReady { instance: 0, node: 1 });
    wm.emit(
        1_500,
        EventKind::SchedDecision {
            invocation: 2,
            ready: 1,
            candidates: 0b11,
            chosen: 0b10,
            assigned: 1,
        },
    );
    wm.emit(1_500, EventKind::TaskDispatch { instance: 0, node: 1, pe: 1 });
    wm.emit(1_500, EventKind::PeBusy { pe: 1 });

    let rm = sink.writer("rm-FFT1");
    rm.emit(1_500, EventKind::PoolUnpark { pe: 1 });
    rm.emit(1_700, EventKind::Dma { pe: 1, phase: DmaPhase::In, start_ns: 1_500, end_ns: 1_700 });
    rm.emit(
        2_900,
        EventKind::Dma { pe: 1, phase: DmaPhase::Compute, start_ns: 1_700, end_ns: 2_900 },
    );
    rm.emit(3_100, EventKind::Dma { pe: 1, phase: DmaPhase::Out, start_ns: 2_900, end_ns: 3_100 });
    rm.emit(3_100, EventKind::PoolPark { pe: 1 });

    wm.emit(
        3_100,
        EventKind::TaskSlice {
            instance: 0,
            node: 1,
            pe: 1,
            ready_ns: 1_500,
            start_ns: 1_500,
            finish_ns: 3_100,
        },
    );
    wm.emit(3_100, EventKind::PeIdle { pe: 1 });
    wm.emit(3_100, EventKind::AppFinish { instance: 0 });
    session
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_export_matches_golden_and_parses_back() {
    let session = fixture();
    let events = session.drain();
    let doc = export::chrome_json(&events, &session.meta());
    let text = serde_json::to_string_pretty(&doc).unwrap() + "\n";
    check_golden("chrome.json", &text);

    // The golden bytes are themselves valid JSON with the right shape.
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    let evs = back["traceEvents"].as_array().unwrap();
    assert!(evs.len() > 10);
    assert!(evs.iter().all(|e| e["ph"].as_str().is_some()));
    assert_eq!(evs.iter().filter(|e| e["ph"] == "X" && e["cat"] == "task").count(), 2);
    assert_eq!(evs.iter().filter(|e| e["cat"] == "dma").count(), 3);
}

#[test]
fn jsonl_export_matches_golden() {
    let session = fixture();
    let text = export::jsonl(&session.drain());
    check_golden("events.jsonl", &text);
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert!(v["ts_ns"].as_u64().is_some());
    }
}
