//! # dssoc-trace — event tracing & timelines for the DSSoC emulator
//!
//! A low-overhead structured tracing subsystem for the emulation
//! framework: the engines record fixed-size [`TraceEvent`]s into
//! per-producer lock-free [`EventRing`]s (bounded, drop-counted, never
//! blocking), and a [`TraceSession`] merges them into one canonical
//! stream that exports three ways:
//!
//! * [`export::chrome_json`] — Chrome trace-event / Perfetto JSON
//!   (open in <https://ui.perfetto.dev>): one track per PE, plus
//!   scheduler-decision, DMA, and application tracks.
//! * [`timeline::render`] — a text Gantt chart with per-PE occupancy.
//! * [`export::jsonl`] — compact JSON Lines for diffing runs and
//!   engines.
//!
//! The recording side is engineered to disappear when unused: engines
//! hold an `Option<TraceSink>`, so the untraced hot path pays one
//! branch. When tracing, recording an event is two atomic operations
//! and a 48-byte slot write — no locks, no allocation.
//!
//! ```
//! use dssoc_trace::{EventKind, TraceSession};
//!
//! let session = TraceSession::new();
//! let sink = session.sink();
//! sink.set_pe(0, "Core1", false);
//! let writer = sink.writer("workload-manager");
//! writer.emit(0, EventKind::TaskReady { instance: 0, node: 0 });
//! writer.emit(
//!     500,
//!     EventKind::TaskSlice {
//!         instance: 0, node: 0, pe: 0, ready_ns: 0, start_ns: 0, finish_ns: 500,
//!     },
//! );
//!
//! let events = session.drain();
//! let chrome = dssoc_trace::export::chrome_json(&events, &session.meta());
//! assert!(serde_json::to_string(&chrome).unwrap().contains("traceEvents"));
//! println!("{}", dssoc_trace::timeline::render(&events, &session.meta(), &[]));
//! ```

#![warn(missing_docs)]

mod event;
pub mod export;
mod ring;
mod session;
pub mod timeline;

pub use event::{DmaPhase, EventKind, FaultKind, TraceEvent};
pub use ring::EventRing;
pub use session::{PeMeta, TraceMeta, TraceSession, TraceSink, TraceWriter, DEFAULT_RING_CAPACITY};
