//! Trace exporters.
//!
//! * [`chrome_json`] — Chrome trace-event format (the JSON flavour
//!   Perfetto and `chrome://tracing` load directly): one track per PE
//!   carrying task slices, a scheduler track carrying decision instants
//!   with candidate/chosen provenance, a DMA track per accelerator PE,
//!   an applications track, and a `ready_tasks` counter series.
//! * [`jsonl`] — one compact JSON object per event, in canonical
//!   `(timestamp, sequence)` order: the diff-friendly stream the
//!   cross-engine differential tests compare.
//!
//! Field ordering is stable: the shim `serde_json::Value` object is a
//! `BTreeMap`, so keys always serialize alphabetically — which is what
//! the golden-file test pins down.

use serde_json::{json, Value};

use crate::event::{EventKind, TraceEvent};
use crate::session::TraceMeta;

/// Synthetic Chrome `pid` for the emulated SoC.
const PID: u64 = 1;
/// `tid` of the scheduler-decision track.
const TID_SCHED: u64 = 1000;
/// `tid` of the application arrive/finish track.
const TID_APPS: u64 = 1001;
/// `tid` of the fault/retry/quarantine/degraded-dispatch track.
const TID_FAULTS: u64 = 1002;
/// `tid` offset of per-accelerator DMA tracks.
const TID_DMA_BASE: u64 = 2000;

fn us(ts_ns: u64) -> f64 {
    ts_ns as f64 / 1000.0
}

fn pe_tid(pe: u32) -> u64 {
    pe as u64 + 1
}

/// Names of the PEs in an id bitmask, in id order.
fn mask_names(mask: u64, meta: &TraceMeta) -> Vec<Value> {
    (0..64u32).filter(|b| mask & (1u64 << b) != 0).map(|b| Value::String(meta.pe_name(b))).collect()
}

fn thread_meta(tid: u64, name: &str, sort_index: u64) -> Vec<Value> {
    vec![
        json!({"ph": "M", "pid": PID, "tid": tid, "name": "thread_name",
               "args": {"name": name}}),
        json!({"ph": "M", "pid": PID, "tid": tid, "name": "thread_sort_index",
               "args": {"sort_index": sort_index}}),
    ]
}

/// Renders the event stream as a Chrome trace-event JSON document.
///
/// `events` must be in canonical order (what
/// [`TraceSession::drain`](crate::TraceSession::drain) returns);
/// timestamps are converted to the format's microsecond unit.
pub fn chrome_json(events: &[TraceEvent], meta: &TraceMeta) -> Value {
    let mut out: Vec<Value> = Vec::with_capacity(events.len() + 16);

    // Track metadata: process, one thread per PE (in id order), the
    // scheduler and application tracks, and DMA tracks for accelerators.
    out.push(json!({"ph": "M", "pid": PID, "tid": 0, "name": "process_name",
                    "args": {"name": "dssoc-emu"}}));
    if let Some(span) = &meta.span {
        out.push(json!({"ph": "M", "pid": PID, "tid": 0, "name": "span_id",
                        "args": {"span": span}}));
    }
    for (&id, pe) in &meta.pes {
        out.extend(thread_meta(pe_tid(id), &pe.name, pe_tid(id)));
        if pe.is_accel {
            out.extend(thread_meta(
                TID_DMA_BASE + id as u64,
                &format!("{} dma", pe.name),
                TID_DMA_BASE + id as u64,
            ));
        }
    }
    out.extend(thread_meta(TID_SCHED, &format!("scheduler [{}]", meta.policy), TID_SCHED));
    out.extend(thread_meta(TID_APPS, "applications", TID_APPS));
    if events.iter().any(|ev| {
        matches!(
            ev.kind,
            EventKind::Fault { .. }
                | EventKind::Retry { .. }
                | EventKind::Quarantine { .. }
                | EventKind::DegradedDispatch { .. }
        )
    }) {
        out.extend(thread_meta(TID_FAULTS, "faults", TID_FAULTS));
    }

    // Running ready-list depth, exported as a counter series.
    let mut ready_depth: i64 = 0;

    for ev in events {
        match ev.kind {
            EventKind::TaskSlice { instance, node, pe, ready_ns, start_ns, finish_ns } => {
                out.push(json!({
                    "ph": "X", "pid": PID, "tid": pe_tid(pe), "cat": "task",
                    "name": meta.task_label(instance, node),
                    "ts": us(start_ns), "dur": us(finish_ns.saturating_sub(start_ns)),
                    "args": {
                        "app": meta.app_label(instance),
                        "instance": instance,
                        "node": node,
                        "pe": meta.pe_name(pe),
                        "wait_us": us(start_ns.saturating_sub(ready_ns)),
                    },
                }));
            }
            EventKind::SchedDecision { invocation, ready, candidates, chosen, assigned } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_SCHED, "cat": "sched",
                    "name": "schedule", "s": "t", "ts": us(ev.ts_ns),
                    "args": {
                        "assigned": assigned,
                        "candidates": mask_names(candidates, meta),
                        "chosen": mask_names(chosen, meta),
                        "invocation": invocation,
                        "policy": meta.policy.clone(),
                        "ready": ready,
                    },
                }));
            }
            EventKind::Dma { pe, phase, start_ns, end_ns } => {
                out.push(json!({
                    "ph": "X", "pid": PID, "tid": TID_DMA_BASE + pe as u64, "cat": "dma",
                    "name": phase.name(),
                    "ts": us(start_ns), "dur": us(end_ns.saturating_sub(start_ns)),
                    "args": {"pe": meta.pe_name(pe)},
                }));
            }
            EventKind::AppArrive { instance } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_APPS, "cat": "app",
                    "name": format!("arrive {}", meta.app_label(instance)),
                    "s": "t", "ts": us(ev.ts_ns),
                    "args": {"instance": instance},
                }));
            }
            EventKind::AppFinish { instance } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_APPS, "cat": "app",
                    "name": format!("finish {}", meta.app_label(instance)),
                    "s": "t", "ts": us(ev.ts_ns),
                    "args": {"instance": instance},
                }));
            }
            EventKind::TaskReady { .. } | EventKind::TaskDispatch { .. } => {
                ready_depth += match ev.kind {
                    EventKind::TaskReady { .. } => 1,
                    _ => -1,
                };
                out.push(json!({
                    "ph": "C", "pid": PID, "tid": 0, "name": "ready_tasks",
                    "ts": us(ev.ts_ns), "args": {"ready": ready_depth.max(0)},
                }));
            }
            EventKind::PoolUnpark { pe } | EventKind::PoolPark { pe } => {
                let parked = matches!(ev.kind, EventKind::PoolPark { .. });
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": pe_tid(pe), "cat": "pool",
                    "name": if parked { "park" } else { "unpark" },
                    "s": "t", "ts": us(ev.ts_ns), "args": {},
                }));
            }
            EventKind::Fault { instance, node, pe, kind } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_FAULTS, "cat": "fault",
                    "name": format!("fault[{}] {}", kind.name(), meta.task_label(instance, node)),
                    "s": "t", "ts": us(ev.ts_ns),
                    "args": {"instance": instance, "kind": kind.name(), "node": node,
                             "pe": meta.pe_name(pe)},
                }));
            }
            EventKind::Retry { instance, node, attempt, release_ns } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_FAULTS, "cat": "fault",
                    "name": format!("retry {}", meta.task_label(instance, node)),
                    "s": "t", "ts": us(ev.ts_ns),
                    "args": {"attempt": attempt, "instance": instance, "node": node,
                             "release_us": us(release_ns)},
                }));
            }
            EventKind::Quarantine { pe } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_FAULTS, "cat": "fault",
                    "name": format!("quarantine {}", meta.pe_name(pe)),
                    "s": "t", "ts": us(ev.ts_ns),
                    "args": {"pe": meta.pe_name(pe)},
                }));
            }
            EventKind::DegradedDispatch { instance, node, pe } => {
                out.push(json!({
                    "ph": "i", "pid": PID, "tid": TID_FAULTS, "cat": "fault",
                    "name": format!("degraded {}", meta.task_label(instance, node)),
                    "s": "t", "ts": us(ev.ts_ns),
                    "args": {"instance": instance, "node": node, "pe": meta.pe_name(pe)},
                }));
            }
            // Busy/idle transitions are implied by the task slices in the
            // Chrome view; they stay available in the JSONL stream.
            EventKind::PeBusy { .. } | EventKind::PeIdle { .. } => {}
        }
    }

    json!({"displayTimeUnit": "ms", "traceEvents": out})
}

/// [`chrome_json`] plus a `trace_drops` metadata record when any
/// producer ring overflowed. `producers` is
/// [`TraceSession::producers`](crate::TraceSession::producers) output;
/// with zero drops the document is identical to [`chrome_json`]'s, so
/// golden consumers only see the record on lossy traces.
pub fn chrome_json_with_drops(
    events: &[TraceEvent],
    meta: &TraceMeta,
    producers: &[(String, usize, u64)],
) -> Value {
    let mut doc = chrome_json(events, meta);
    let total: u64 = producers.iter().map(|(_, _, d)| *d).sum();
    if total > 0 {
        let per: Vec<Value> = producers
            .iter()
            .filter(|(_, _, d)| *d > 0)
            .map(
                |(name, recorded, d)| json!({"dropped": d, "producer": name, "recorded": recorded}),
            )
            .collect();
        if let Value::Object(map) = &mut doc {
            if let Some(Value::Array(evs)) = map.get_mut("traceEvents") {
                evs.push(json!({
                    "ph": "M", "pid": PID, "tid": 0, "name": "trace_drops",
                    "args": {"producers": per, "total_dropped": total},
                }));
            }
        }
    }
    doc
}

/// One event as a flat JSON object (the JSONL record shape).
pub fn event_json(ev: &TraceEvent) -> Value {
    let mut obj = match ev.kind {
        EventKind::AppArrive { instance } | EventKind::AppFinish { instance } => {
            json!({"instance": instance})
        }
        EventKind::TaskReady { instance, node } => json!({"instance": instance, "node": node}),
        EventKind::TaskDispatch { instance, node, pe } => {
            json!({"instance": instance, "node": node, "pe": pe})
        }
        EventKind::TaskSlice { instance, node, pe, ready_ns, start_ns, finish_ns } => json!({
            "finish_ns": finish_ns, "instance": instance, "node": node, "pe": pe,
            "ready_ns": ready_ns, "start_ns": start_ns,
        }),
        EventKind::SchedDecision { invocation, ready, candidates, chosen, assigned } => json!({
            "assigned": assigned, "candidates": candidates, "chosen": chosen,
            "invocation": invocation, "ready": ready,
        }),
        EventKind::PeBusy { pe } | EventKind::PeIdle { pe } => json!({"pe": pe}),
        EventKind::Dma { pe, phase, start_ns, end_ns } => {
            json!({"end_ns": end_ns, "pe": pe, "phase": phase.name(), "start_ns": start_ns})
        }
        EventKind::PoolUnpark { pe } | EventKind::PoolPark { pe } => json!({"pe": pe}),
        EventKind::Fault { instance, node, pe, kind } => {
            json!({"fault": kind.name(), "instance": instance, "node": node, "pe": pe})
        }
        EventKind::Retry { instance, node, attempt, release_ns } => {
            json!({"attempt": attempt, "instance": instance, "node": node, "release_ns": release_ns})
        }
        EventKind::Quarantine { pe } => json!({"pe": pe}),
        EventKind::DegradedDispatch { instance, node, pe } => {
            json!({"instance": instance, "node": node, "pe": pe})
        }
    };
    if let Value::Object(map) = &mut obj {
        map.insert("kind".to_string(), Value::String(ev.kind.name().to_string()));
        map.insert("seq".to_string(), json!(ev.seq));
        map.insert("ts_ns".to_string(), json!(ev.ts_ns));
    }
    obj
}

/// Renders the event stream as JSON Lines — one compact object per
/// event, in canonical order. `diff`-friendly and trivially parseable.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(&event_json(ev)).expect("event json"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DmaPhase;
    use crate::session::TraceSession;

    fn fixture() -> (Vec<TraceEvent>, TraceMeta) {
        let session = TraceSession::new();
        let sink = session.sink();
        sink.set_policy("FRFS");
        sink.set_pe(0, "Core1", false);
        sink.set_pe(1, "FFT1", true);
        sink.register_app("radar", vec!["FFT".into()]);
        sink.register_instance(0, "radar");
        let w = sink.writer("wm");
        w.emit(0, EventKind::AppArrive { instance: 0 });
        w.emit(0, EventKind::TaskReady { instance: 0, node: 0 });
        w.emit(
            100,
            EventKind::SchedDecision {
                invocation: 1,
                ready: 1,
                candidates: 0b11,
                chosen: 0b10,
                assigned: 1,
            },
        );
        w.emit(100, EventKind::TaskDispatch { instance: 0, node: 0, pe: 1 });
        w.emit(100, EventKind::PeBusy { pe: 1 });
        w.emit(150, EventKind::Dma { pe: 1, phase: DmaPhase::In, start_ns: 100, end_ns: 150 });
        w.emit(
            5100,
            EventKind::TaskSlice {
                instance: 0,
                node: 0,
                pe: 1,
                ready_ns: 0,
                start_ns: 100,
                finish_ns: 5100,
            },
        );
        w.emit(5100, EventKind::PeIdle { pe: 1 });
        w.emit(5100, EventKind::AppFinish { instance: 0 });
        (session.drain(), session.meta())
    }

    #[test]
    fn chrome_export_has_tracks_slices_and_decisions() {
        let (events, meta) = fixture();
        let doc = chrome_json(&events, &meta);
        let text = serde_json::to_string(&doc).unwrap();
        // Valid JSON: parses back.
        let back: Value = serde_json::from_str(&text).unwrap();
        let evs = back["traceEvents"].as_array().unwrap();

        // Thread-name metadata for both PEs, the DMA track, scheduler, apps.
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e["name"] == "thread_name")
            .map(|e| e["args"]["name"].as_str().unwrap())
            .collect();
        assert!(names.contains(&"Core1"));
        assert!(names.contains(&"FFT1"));
        assert!(names.contains(&"FFT1 dma"));
        assert!(names.contains(&"scheduler [FRFS]"));
        assert!(names.contains(&"applications"));

        // The task slice landed on FFT1's track with its wait time.
        let slice = evs.iter().find(|e| e["ph"] == "X" && e["cat"] == "task").unwrap();
        assert_eq!(slice["name"], "radar/FFT");
        assert_eq!(slice["tid"], 2u64); // pe 1 -> tid 2
        assert_eq!(slice["ts"], 0.1f64);
        assert_eq!(slice["dur"], 5.0f64);

        // The decision carries candidate/chosen provenance by name.
        let dec = evs.iter().find(|e| e["cat"] == "sched").unwrap();
        assert_eq!(dec["args"]["candidates"].as_array().unwrap().len(), 2);
        assert_eq!(dec["args"]["chosen"][0], "FFT1");
        assert_eq!(dec["args"]["policy"], "FRFS");

        // DMA slice on the accelerator's DMA track.
        let dma = evs.iter().find(|e| e["cat"] == "dma").unwrap();
        assert_eq!(dma["name"], "dma_in");
        assert_eq!(dma["tid"], 2001u64);

        // Ready counter went 1 then 0.
        let counters: Vec<i64> = evs
            .iter()
            .filter(|e| e["ph"] == "C")
            .map(|e| e["args"]["ready"].as_i64().unwrap())
            .collect();
        assert_eq!(counters, vec![1, 0]);
    }

    #[test]
    fn chrome_export_records_ring_drops_as_metadata() {
        let (events, meta) = fixture();
        // Clean session: no trace_drops record is emitted at all.
        let clean = chrome_json_with_drops(&events, &meta, &[("wm".to_string(), 9, 0)]);
        let text = serde_json::to_string(&clean).unwrap();
        assert!(!text.contains("trace_drops"));

        let producers = vec![
            ("wm".to_string(), 9, 0u64),
            ("rm-1".to_string(), 4, 17),
            ("rm-2".to_string(), 2, 3),
        ];
        let doc = chrome_json_with_drops(&events, &meta, &producers);
        let back: Value = serde_json::from_str(&serde_json::to_string(&doc).unwrap()).unwrap();
        let evs = back["traceEvents"].as_array().unwrap();
        let rec = evs.iter().find(|e| e["name"] == "trace_drops").expect("drops metadata record");
        assert_eq!(rec["ph"], "M");
        assert_eq!(rec["args"]["total_dropped"].as_u64().unwrap(), 20);
        let per = rec["args"]["producers"].as_array().unwrap();
        assert_eq!(per.len(), 2, "clean producers are omitted");
        assert_eq!(per[0]["producer"], "rm-1");
        assert_eq!(per[0]["dropped"].as_u64().unwrap(), 17);
        assert_eq!(per[0]["recorded"].as_u64().unwrap(), 4);
    }

    #[test]
    fn chrome_export_carries_the_job_span_id() {
        let (events, mut meta) = fixture();
        let clean = serde_json::to_string(&chrome_json(&events, &meta)).unwrap();
        assert!(!clean.contains("span_id"), "no span registered, no record");

        meta.span = Some("00c0ffee00c0ffee".to_string());
        let doc = chrome_json(&events, &meta);
        let evs = doc["traceEvents"].as_array().unwrap();
        let rec = evs.iter().find(|e| e["name"] == "span_id").expect("span metadata record");
        assert_eq!(rec["ph"], "M");
        assert_eq!(rec["args"]["span"], "00c0ffee00c0ffee");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_event_in_order() {
        let (events, _) = fixture();
        let text = jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        let mut last_key = (0u64, 0u64);
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap();
            let key = (v["ts_ns"].as_u64().unwrap(), v["seq"].as_u64().unwrap());
            assert!(key >= last_key, "canonical order violated");
            last_key = key;
            assert!(v["kind"].as_str().is_some());
        }
        assert!(lines[0].contains("\"kind\":\"app_arrive\""));
        assert!(text.contains("\"kind\":\"task_slice\""));
        assert!(text.contains("\"kind\":\"pe_busy\""), "busy/idle events kept in JSONL");
    }
}
