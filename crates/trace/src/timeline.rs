//! Derived text timeline: a Gantt view of the task slices plus a
//! per-PE occupancy summary, rendered from the same canonical event
//! stream as the JSON exporters. Meant for terminals and diffs — the
//! Chrome export is the interactive view.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};
use crate::session::TraceMeta;

/// Width of the Gantt bar area in characters.
const BAR_WIDTH: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Slice {
    start_ns: u64,
    finish_ns: u64,
}

/// Per-PE totals derived from the task slices.
#[derive(Debug, Clone, PartialEq)]
pub struct PeOccupancy {
    /// Raw PE id.
    pub pe: u32,
    /// Display name.
    pub name: String,
    /// Number of task slices executed on this PE.
    pub tasks: usize,
    /// Total busy nanoseconds.
    pub busy_ns: u64,
    /// Busy time over the trace's span, in `[0, 1]`.
    pub occupancy: f64,
}

/// Computes per-PE occupancy over the trace span (first event to last
/// task finish). PEs registered in `meta` appear even when idle.
pub fn occupancy(events: &[TraceEvent], meta: &TraceMeta) -> Vec<PeOccupancy> {
    let mut busy: BTreeMap<u32, (usize, u64)> = BTreeMap::new();
    for &id in meta.pes.keys() {
        busy.insert(id, (0, 0));
    }
    let mut span_end = 0u64;
    let mut span_start = events.first().map_or(0, |e| e.ts_ns);
    for ev in events {
        if let EventKind::TaskSlice { pe, start_ns, finish_ns, .. } = ev.kind {
            let entry = busy.entry(pe).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += finish_ns.saturating_sub(start_ns);
            // Slices are emitted at completion; their starts can precede
            // the first event's timestamp.
            span_start = span_start.min(start_ns);
            span_end = span_end.max(finish_ns);
        }
        span_end = span_end.max(ev.ts_ns);
    }
    let span = span_end.saturating_sub(span_start).max(1);
    busy.into_iter()
        .map(|(pe, (tasks, busy_ns))| PeOccupancy {
            pe,
            name: meta.pe_name(pe),
            tasks,
            busy_ns,
            occupancy: busy_ns as f64 / span as f64,
        })
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Renders the text timeline: one Gantt row per PE (task slices drawn
/// as `#` runs over the trace span), the occupancy table, and drop
/// accounting when any producer overflowed.
///
/// `producers` is [`TraceSession::producers`](crate::TraceSession::producers)
/// output; pass an empty slice to omit the accounting section.
pub fn render(
    events: &[TraceEvent],
    meta: &TraceMeta,
    producers: &[(String, usize, u64)],
) -> String {
    let mut slices: BTreeMap<u32, Vec<Slice>> = BTreeMap::new();
    for &id in meta.pes.keys() {
        slices.insert(id, Vec::new());
    }
    let mut span_start = events.first().map_or(0, |e| e.ts_ns);
    let mut span_end = span_start;
    for ev in events {
        if let EventKind::TaskSlice { pe, start_ns, finish_ns, .. } = ev.kind {
            slices.entry(pe).or_default().push(Slice { start_ns, finish_ns });
            span_start = span_start.min(start_ns);
            span_end = span_end.max(finish_ns);
        }
        span_end = span_end.max(ev.ts_ns);
    }
    let span = span_end.saturating_sub(span_start).max(1);

    let name_w = slices.keys().map(|&pe| meta.pe_name(pe).len()).max().unwrap_or(4).max(4);

    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} events over {} (policy: {})\n",
        events.len(),
        fmt_ms(span),
        if meta.policy.is_empty() { "?" } else { &meta.policy },
    ));
    out.push_str(&format!("{:name_w$} |{}| busy\n", "PE", "-".repeat(BAR_WIDTH), name_w = name_w));

    for (&pe, pe_slices) in &slices {
        let mut bar = vec![b'.'; BAR_WIDTH];
        let mut busy_ns = 0u64;
        for s in pe_slices {
            busy_ns += s.finish_ns.saturating_sub(s.start_ns);
            let lo = ((s.start_ns.saturating_sub(span_start)) as u128 * BAR_WIDTH as u128
                / span as u128) as usize;
            let hi = ((s.finish_ns.saturating_sub(span_start)) as u128 * BAR_WIDTH as u128
                / span as u128) as usize;
            for cell in bar.iter_mut().take(hi.max(lo + 1).min(BAR_WIDTH)).skip(lo.min(BAR_WIDTH)) {
                *cell = b'#';
            }
        }
        out.push_str(&format!(
            "{:name_w$} |{}| {:5.1}% ({} tasks, {})\n",
            meta.pe_name(pe),
            String::from_utf8(bar).expect("ascii bar"),
            100.0 * busy_ns as f64 / span as f64,
            pe_slices.len(),
            fmt_ms(busy_ns),
            name_w = name_w
        ));
    }

    let total_dropped: u64 = producers.iter().map(|(_, _, d)| d).sum();
    if total_dropped > 0 {
        out.push_str(&format!("dropped: {total_dropped} events (ring full)\n"));
        for (name, recorded, dropped) in producers {
            if *dropped > 0 {
                out.push_str(&format!("  {name}: kept {recorded}, dropped {dropped}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TraceSession;

    fn slice(instance: u64, node: u32, pe: u32, start_ns: u64, finish_ns: u64) -> EventKind {
        EventKind::TaskSlice { instance, node, pe, ready_ns: start_ns, start_ns, finish_ns }
    }

    fn two_pe_session() -> TraceSession {
        let session = TraceSession::new();
        let sink = session.sink();
        sink.set_policy("FRFS");
        sink.set_pe(0, "Core1", false);
        sink.set_pe(1, "FFT1", true);
        let w = sink.writer("wm");
        w.emit(1000, slice(0, 0, 0, 0, 1000));
        w.emit(2000, slice(0, 1, 1, 1000, 2000));
        w.emit(4000, slice(1, 0, 0, 2000, 4000));
        session
    }

    #[test]
    fn occupancy_sums_slices_over_span() {
        let session = two_pe_session();
        let occ = occupancy(&session.drain(), &session.meta());
        assert_eq!(occ.len(), 2);
        // Core1: 1000 + 2000 busy over a 4000ns span.
        assert_eq!(occ[0].name, "Core1");
        assert_eq!(occ[0].tasks, 2);
        assert_eq!(occ[0].busy_ns, 3000);
        assert!((occ[0].occupancy - 0.75).abs() < 1e-9);
        // FFT1: 1000 over 4000.
        assert_eq!(occ[1].name, "FFT1");
        assert!((occ[1].occupancy - 0.25).abs() < 1e-9);
    }

    #[test]
    fn render_draws_bars_and_percentages() {
        let session = two_pe_session();
        let text = render(&session.drain(), &session.meta(), &session.producers());
        assert!(text.contains("policy: FRFS"));
        assert!(text.contains("Core1"));
        assert!(text.contains("FFT1"));
        assert!(text.contains("75.0%"));
        assert!(text.contains("25.0%"));
        assert!(text.contains('#'));
        assert!(!text.contains("dropped"), "no drop section when nothing dropped");
        // Every row has the same width up to the bar's closing pipe.
        let rows: Vec<&str> = text.lines().skip(1).collect();
        let bar_end: Vec<usize> = rows.iter().map(|r| r.rfind('|').unwrap()).collect();
        assert!(bar_end.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn render_reports_drops() {
        let session = TraceSession::with_capacity(2);
        let sink = session.sink();
        sink.set_pe(0, "Core1", false);
        let w = sink.writer("wm");
        for i in 0..5u64 {
            w.emit(i, slice(0, i as u32, 0, i, i + 1));
        }
        let text = render(&session.drain(), &session.meta(), &session.producers());
        assert!(text.contains("dropped: 3 events"));
        assert!(text.contains("wm: kept 2, dropped 3"));
    }

    #[test]
    fn empty_trace_renders_registered_pes_idle() {
        let session = TraceSession::new();
        session.sink().set_pe(0, "Core1", false);
        let text = render(&session.drain(), &session.meta(), &[]);
        assert!(text.contains("Core1"));
        assert!(text.contains("0.0%"));
        let occ = occupancy(&[], &session.meta());
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].busy_ns, 0);
    }
}
