//! The trace event schema.
//!
//! One [`TraceEvent`] is a fixed-size, allocation-free value: producers
//! copy it into a pre-allocated ring slot, so recording an event on a
//! hot path costs two atomic operations and a memcpy — never a heap
//! allocation or a lock. Human-readable names (PE names, task labels,
//! application names, the policy name) are registered once per run in
//! the session's metadata table and joined back in at export time.
//!
//! Both emulation engines — the threaded emulator and the discrete-event
//! baseline — emit exactly this schema through the shared scheduling
//! core, which is what makes event streams diffable across engines.

/// Phase of one accelerator DMA round trip (paper Fig. 4: DDR→device,
/// compute, device→DDR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaPhase {
    /// DDR → device local memory transfer.
    In,
    /// Device compute.
    Compute,
    /// Device local memory → DDR transfer.
    Out,
}

impl DmaPhase {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            DmaPhase::In => "dma_in",
            DmaPhase::Compute => "compute",
            DmaPhase::Out => "dma_out",
        }
    }
}

/// Category of an injected or detected fault (see the fault-injection
/// plan in the emulation core). Carried in [`EventKind::Fault`] so
/// reliability studies can break events down by failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A probabilistic per-execution failure: the task ran but its
    /// result is discarded.
    Transient,
    /// The PE failed permanently at a configured time; the in-flight
    /// task (if any) is lost and the PE never returns.
    Permanent,
    /// The kernel stalled; the (virtual) watchdog deadline expired.
    Hang,
    /// The real watchdog caught an unresponsive resource-manager
    /// thread (threaded engine only).
    Watchdog,
    /// A kernel returned an execution error and the recovery policy
    /// absorbed it instead of aborting the run.
    Exec,
}

impl FaultKind {
    /// Stable lower-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Permanent => "permanent",
            FaultKind::Hang => "hang",
            FaultKind::Watchdog => "watchdog",
            FaultKind::Exec => "exec",
        }
    }
}

/// What happened. All payloads are small `Copy` values; ids are the raw
/// integers behind the runtime's `InstanceId`/`PeId` newtypes so this
/// crate stays below the emulation core in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An application instance was injected into the workload.
    AppArrive {
        /// Raw instance id.
        instance: u64,
    },
    /// The last task of an application instance finished.
    AppFinish {
        /// Raw instance id.
        instance: u64,
    },
    /// A task's predecessors all completed; it joined the ready list.
    TaskReady {
        /// Raw instance id.
        instance: u64,
        /// DAG node index within the instance.
        node: u32,
    },
    /// The workload manager handed a task to a PE's resource manager.
    TaskDispatch {
        /// Raw instance id.
        instance: u64,
        /// DAG node index within the instance.
        node: u32,
        /// Destination PE.
        pe: u32,
    },
    /// A task's full execution interval, emitted at completion (this is
    /// the Gantt slice: `start_ns..finish_ns` on PE `pe`).
    TaskSlice {
        /// Raw instance id.
        instance: u64,
        /// DAG node index within the instance.
        node: u32,
        /// Executing PE.
        pe: u32,
        /// When the task became ready (for queueing-delay provenance).
        ready_ns: u64,
        /// Execution start on the PE.
        start_ns: u64,
        /// Execution finish on the PE.
        finish_ns: u64,
    },
    /// One scheduler invocation: which PEs were offered (candidate set)
    /// and which were chosen — the decision provenance the post-hoc
    /// aggregates cannot reconstruct.
    SchedDecision {
        /// 1-based invocation ordinal within the run.
        invocation: u64,
        /// Ready-list length the policy saw.
        ready: u32,
        /// Bitmask of schedulable (candidate) PE ids.
        candidates: u64,
        /// Bitmask of PE ids the policy assigned to.
        chosen: u64,
        /// Number of assignments returned.
        assigned: u32,
    },
    /// A PE transitioned idle → busy.
    PeBusy {
        /// The PE.
        pe: u32,
    },
    /// A PE transitioned busy → idle.
    PeIdle {
        /// The PE.
        pe: u32,
    },
    /// One DMA/compute phase of an accelerator invocation.
    Dma {
        /// The accelerator PE.
        pe: u32,
        /// Which phase.
        phase: DmaPhase,
        /// Phase start (emulation time).
        start_ns: u64,
        /// Phase end (emulation time).
        end_ns: u64,
    },
    /// A pool resource-manager thread picked up work (left its parked
    /// wait in the persistent [`ResourcePool`]).
    ///
    /// [`ResourcePool`]: https://docs.rs/dssoc-core
    PoolUnpark {
        /// The PE whose manager thread unparked.
        pe: u32,
    },
    /// A pool resource-manager thread finished its task and returned to
    /// the parked wait.
    PoolPark {
        /// The PE whose manager thread parked.
        pe: u32,
    },
    /// One task execution attempt faulted (injected or detected).
    Fault {
        /// Raw instance id.
        instance: u64,
        /// DAG node index within the instance.
        node: u32,
        /// The PE the attempt ran on.
        pe: u32,
        /// Failure mode.
        kind: FaultKind,
    },
    /// A faulted task was requeued for another attempt.
    Retry {
        /// Raw instance id.
        instance: u64,
        /// DAG node index within the instance.
        node: u32,
        /// The attempt that just faulted (1-based).
        attempt: u32,
        /// When the retry re-enters the ready list (after backoff).
        release_ns: u64,
    },
    /// A PE was removed from the schedulable set for the rest of the
    /// run (permanent failure, hang, or repeated transient faults).
    Quarantine {
        /// The quarantined PE.
        pe: u32,
    },
    /// A retried task was dispatched onto a different PE class than the
    /// one it faulted on — the graceful-degradation path.
    DegradedDispatch {
        /// Raw instance id.
        instance: u64,
        /// DAG node index within the instance.
        node: u32,
        /// The surviving PE that took the task.
        pe: u32,
    },
}

impl EventKind {
    /// Stable snake_case kind name used by the JSONL export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::AppArrive { .. } => "app_arrive",
            EventKind::AppFinish { .. } => "app_finish",
            EventKind::TaskReady { .. } => "task_ready",
            EventKind::TaskDispatch { .. } => "task_dispatch",
            EventKind::TaskSlice { .. } => "task_slice",
            EventKind::SchedDecision { .. } => "sched_decision",
            EventKind::PeBusy { .. } => "pe_busy",
            EventKind::PeIdle { .. } => "pe_idle",
            EventKind::Dma { .. } => "dma",
            EventKind::PoolUnpark { .. } => "pool_unpark",
            EventKind::PoolPark { .. } => "pool_park",
            EventKind::Fault { .. } => "fault",
            EventKind::Retry { .. } => "retry",
            EventKind::Quarantine { .. } => "quarantine",
            EventKind::DegradedDispatch { .. } => "degraded_dispatch",
        }
    }
}

/// One recorded event: an emulation-clock timestamp, a session-global
/// sequence number (total order for merging per-producer rings), and the
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emulation time in nanoseconds since the reference start.
    pub ts_ns: u64,
    /// Session-global sequence number (assigned at record time).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::AppArrive { instance: 0 }.name(), "app_arrive");
        assert_eq!(
            EventKind::TaskSlice {
                instance: 0,
                node: 0,
                pe: 0,
                ready_ns: 0,
                start_ns: 0,
                finish_ns: 0
            }
            .name(),
            "task_slice"
        );
        assert_eq!(DmaPhase::In.name(), "dma_in");
        assert_eq!(DmaPhase::Compute.name(), "compute");
        assert_eq!(DmaPhase::Out.name(), "dma_out");
        assert_eq!(
            EventKind::Fault { instance: 0, node: 0, pe: 0, kind: FaultKind::Transient }.name(),
            "fault"
        );
        assert_eq!(
            EventKind::Retry { instance: 0, node: 0, attempt: 1, release_ns: 0 }.name(),
            "retry"
        );
        assert_eq!(EventKind::Quarantine { pe: 0 }.name(), "quarantine");
        assert_eq!(
            EventKind::DegradedDispatch { instance: 0, node: 0, pe: 0 }.name(),
            "degraded_dispatch"
        );
        assert_eq!(FaultKind::Watchdog.name(), "watchdog");
        assert_eq!(FaultKind::Exec.name(), "exec");
    }

    #[test]
    fn events_are_small_and_copy() {
        // The ring pre-allocates capacity × this size; keep it bounded so
        // a default session stays in the low megabytes.
        assert!(std::mem::size_of::<TraceEvent>() <= 64);
        let e = TraceEvent { ts_ns: 1, seq: 2, kind: EventKind::PeBusy { pe: 3 } };
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
