//! Trace sessions, sinks, and writers.
//!
//! A [`TraceSession`] owns the per-producer rings and the name metadata
//! for one emulation run. The engine side only ever sees a
//! [`TraceSink`] — a cheaply cloneable handle it stores as
//! `Option<TraceSink>` — and the [`TraceWriter`]s it mints, one per
//! producer thread. Recording an event through a writer is two atomic
//! operations and a slot write; registering writers and metadata locks
//! a mutex, but only at run setup, never per event.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, TraceEvent};
use crate::ring::EventRing;

/// Default per-producer ring capacity (events). At ~48 bytes per event
/// this is ~3 MB per producer — enough for tens of thousands of tasks
/// before the drop counter starts moving.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Display metadata for one PE track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeMeta {
    /// Display name ("Core1", "FFT1", ...).
    pub name: String,
    /// True for accelerator PEs (they additionally get a DMA track).
    pub is_accel: bool,
}

/// Name tables joined into exports: ids are recorded in events, names
/// are registered once per run through the sink. Registration is
/// O(applications + instances), not O(instances × nodes) — labels are
/// derived at export time, so run setup stays off the hot path even for
/// workloads with hundreds of instances of the same application.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// Scheduling policy name of the traced run.
    pub policy: String,
    /// Correlation span id of the enclosing job (hex string), when the
    /// run executes under a job manager's flight recorder. Exported as
    /// a `span_id` metadata record so the engine trace can be stitched
    /// into the job timeline.
    pub span: Option<String>,
    /// Per-PE display metadata, keyed by raw PE id.
    pub pes: BTreeMap<u32, PeMeta>,
    /// Application (spec) name per instance id.
    pub instance_apps: HashMap<u64, String>,
    /// Node display names per application, in node-index order.
    pub app_nodes: HashMap<String, Vec<String>>,
}

impl TraceMeta {
    /// The label for a task (`app/node_name`), falling back to
    /// synthetic ids for unregistered instances or nodes.
    pub fn task_label(&self, instance: u64, node: u32) -> String {
        match self.instance_apps.get(&instance) {
            Some(app) => match self.app_nodes.get(app).and_then(|names| names.get(node as usize)) {
                Some(name) => format!("{app}/{name}"),
                None => format!("{app}/n{node}"),
            },
            None => format!("i{instance}/n{node}"),
        }
    }

    /// The display name for a PE, falling back to `PE{id}`.
    pub fn pe_name(&self, pe: u32) -> String {
        self.pes.get(&pe).map(|m| m.name.clone()).unwrap_or_else(|| format!("PE{pe}"))
    }

    /// The label of an application instance (`app#id`), falling back to
    /// `app{id}` when unregistered.
    pub fn app_label(&self, instance: u64) -> String {
        self.instance_apps
            .get(&instance)
            .map(|app| format!("{app}#{instance}"))
            .unwrap_or_else(|| format!("app{instance}"))
    }
}

#[derive(Debug)]
pub(crate) struct Shared {
    capacity: usize,
    seq: AtomicU64,
    pub(crate) rings: Mutex<Vec<(String, Arc<EventRing>)>>,
    pub(crate) meta: Mutex<TraceMeta>,
}

/// One emulation run's trace: per-producer rings plus name metadata.
/// Create it, pass [`TraceSession::sink`] to the engine, run, then
/// export.
#[derive(Debug)]
pub struct TraceSession {
    shared: Arc<Shared>,
}

impl Default for TraceSession {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSession {
    /// A session whose producers each get [`DEFAULT_RING_CAPACITY`]
    /// event slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A session with an explicit per-producer ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSession {
            shared: Arc::new(Shared {
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                rings: Mutex::new(Vec::new()),
                meta: Mutex::new(TraceMeta::default()),
            }),
        }
    }

    /// The handle the emulation engines hold (`Option<TraceSink>`).
    pub fn sink(&self) -> TraceSink {
        TraceSink { shared: Arc::clone(&self.shared) }
    }

    /// All recorded events, merged across producers and sorted by
    /// `(timestamp, sequence)` — the canonical stream every exporter
    /// consumes.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rings = self.shared.rings.lock().expect("trace rings poisoned");
        let mut events: Vec<TraceEvent> = rings.iter().flat_map(|(_, r)| r.snapshot()).collect();
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        events
    }

    /// Total events committed across all producers.
    pub fn events_recorded(&self) -> usize {
        let rings = self.shared.rings.lock().expect("trace rings poisoned");
        rings.iter().map(|(_, r)| r.len()).sum()
    }

    /// Total events dropped across all producers (rings full).
    pub fn dropped(&self) -> u64 {
        let rings = self.shared.rings.lock().expect("trace rings poisoned");
        rings.iter().map(|(_, r)| r.dropped()).sum()
    }

    /// Per-producer `(name, recorded, dropped)` accounting.
    pub fn producers(&self) -> Vec<(String, usize, u64)> {
        let rings = self.shared.rings.lock().expect("trace rings poisoned");
        rings.iter().map(|(n, r)| (n.clone(), r.len(), r.dropped())).collect()
    }

    /// A human-readable account of any ring overflow, or `None` when
    /// every event was captured. Exporters print this at session close
    /// so a truncated trace is never mistaken for a complete one.
    pub fn drop_report(&self) -> Option<String> {
        let producers = self.producers();
        let total: u64 = producers.iter().map(|(_, _, d)| *d).sum();
        if total == 0 {
            return None;
        }
        let detail: Vec<String> = producers
            .iter()
            .filter(|(_, _, d)| *d > 0)
            .map(|(name, _, d)| format!("{name}: {d}"))
            .collect();
        Some(format!(
            "trace rings dropped {total} events ({}); raise the ring capacity \
             (TraceSession::with_capacity) for a complete trace",
            detail.join(", ")
        ))
    }

    /// A snapshot of the registered name metadata.
    pub fn meta(&self) -> TraceMeta {
        self.shared.meta.lock().expect("trace meta poisoned").clone()
    }

    /// Publishes this session's ring accounting into a metrics
    /// registry: per-producer committed-event and drop counters plus a
    /// ring-occupancy histogram (one sample per producer, in events).
    /// Call once at session close — each call *adds* the current
    /// accounting to the family aggregates, so repeated calls would
    /// double-count.
    pub fn publish_metrics(&self, registry: &dssoc_metrics::MetricsRegistry) {
        let occupancy = registry.histogram("dssoc_trace_ring_occupancy", &[]).cell();
        for (producer, recorded, dropped) in self.producers() {
            let labels = [("producer", producer.as_str())];
            registry.counter("dssoc_trace_events", &labels).cell().add(recorded as u64);
            registry.counter("dssoc_trace_ring_dropped", &labels).cell().add(dropped);
            occupancy.record(recorded as u64);
        }
    }
}

/// The engine-facing handle: mints writers and registers metadata.
/// Cloning is one `Arc` bump, so configurations can carry
/// `Option<TraceSink>` by value.
#[derive(Debug, Clone)]
pub struct TraceSink {
    shared: Arc<Shared>,
}

impl TraceSink {
    /// Registers a new producer and returns its writer. Each call
    /// creates a fresh ring; the writer is deliberately not `Clone`, so
    /// the single-producer contract of [`EventRing`] is structural.
    pub fn writer(&self, name: &str) -> TraceWriter {
        let ring = Arc::new(EventRing::new(self.shared.capacity));
        self.shared
            .rings
            .lock()
            .expect("trace rings poisoned")
            .push((name.to_string(), Arc::clone(&ring)));
        TraceWriter {
            ring,
            shared: Arc::clone(&self.shared),
            _single_producer: std::marker::PhantomData,
        }
    }

    /// Records the run's scheduling-policy name.
    pub fn set_policy(&self, name: &str) {
        self.shared.meta.lock().expect("trace meta poisoned").policy = name.to_string();
    }

    /// Records the enclosing job's correlation span id (hex string).
    pub fn set_span(&self, span: &str) {
        self.shared.meta.lock().expect("trace meta poisoned").span = Some(span.to_string());
    }

    /// Registers one PE's display metadata.
    pub fn set_pe(&self, id: u32, name: &str, is_accel: bool) {
        self.shared
            .meta
            .lock()
            .expect("trace meta poisoned")
            .pes
            .insert(id, PeMeta { name: name.to_string(), is_accel });
    }

    /// Registers an application's node display names (in node-index
    /// order). One call per distinct application spec.
    pub fn register_app(&self, app: &str, node_names: Vec<String>) {
        self.shared
            .meta
            .lock()
            .expect("trace meta poisoned")
            .app_nodes
            .insert(app.to_string(), node_names);
    }

    /// Maps one instance id to its application; `app#id` and `app/node`
    /// labels are derived from this at export time.
    pub fn register_instance(&self, instance: u64, app: &str) {
        self.shared
            .meta
            .lock()
            .expect("trace meta poisoned")
            .instance_apps
            .insert(instance, app.to_string());
    }
}

/// A single producer's recording handle. Not `Clone`, and `Send` but
/// **not** `Sync`: a writer can move to its producer thread, but a
/// reference to it can never be shared across threads — which makes the
/// single-producer contract of [`EventRing`] hold in safe code.
#[derive(Debug)]
pub struct TraceWriter {
    ring: Arc<EventRing>,
    shared: Arc<Shared>,
    /// `Cell<()>` is `Send + !Sync`; this opts the writer out of `Sync`.
    _single_producer: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl TraceWriter {
    /// Records one event at emulation time `ts_ns`. Never blocks: a
    /// full ring counts a drop and returns.
    #[inline]
    pub fn emit(&self, ts_ns: u64, kind: EventKind) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.ring.push(TraceEvent { ts_ns, seq, kind });
    }

    /// Events this producer has dropped so far.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DmaPhase;

    #[test]
    fn multi_producer_merge_orders_by_time_then_seq() {
        let session = TraceSession::with_capacity(16);
        let sink = session.sink();
        let a = sink.writer("wm");
        let b = sink.writer("rm-0");
        a.emit(50, EventKind::PeBusy { pe: 0 });
        b.emit(10, EventKind::PoolUnpark { pe: 0 });
        a.emit(10, EventKind::TaskReady { instance: 0, node: 1 });
        b.emit(50, EventKind::PoolPark { pe: 0 });

        let events = session.drain();
        assert_eq!(events.len(), 4);
        let ts: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 10, 50, 50]);
        // Ties break on the global sequence: b's unpark preceded a's ready.
        assert_eq!(events[0].kind, EventKind::PoolUnpark { pe: 0 });
        assert_eq!(events[1].kind, EventKind::TaskReady { instance: 0, node: 1 });
        assert_eq!(session.events_recorded(), 4);
        assert_eq!(session.dropped(), 0);
        assert_eq!(session.producers().len(), 2);
    }

    #[test]
    fn writers_are_independent_rings() {
        let session = TraceSession::with_capacity(2);
        let sink = session.sink();
        let a = sink.writer("a");
        let b = sink.writer("b");
        for i in 0..5 {
            a.emit(i, EventKind::PeBusy { pe: 0 });
        }
        b.emit(0, EventKind::PeIdle { pe: 1 });
        // a overflowed alone; b is untouched.
        assert_eq!(a.dropped(), 3);
        assert_eq!(b.dropped(), 0);
        assert_eq!(session.dropped(), 3);
        assert_eq!(session.events_recorded(), 3);
    }

    #[test]
    fn meta_registration_and_fallbacks() {
        let session = TraceSession::new();
        let sink = session.sink();
        sink.set_policy("FRFS");
        sink.set_pe(0, "Core1", false);
        sink.set_pe(2, "FFT1", true);
        sink.register_app(
            "radar",
            vec!["LFM".into(), "FFT_0".into(), "FFT_1".into(), "MUL".into()],
        );
        sink.register_instance(7, "radar");

        let meta = session.meta();
        assert_eq!(meta.policy, "FRFS");
        assert_eq!(meta.pe_name(0), "Core1");
        assert_eq!(meta.pe_name(9), "PE9");
        assert!(meta.pes[&2].is_accel);
        assert_eq!(meta.task_label(7, 1), "radar/FFT_0");
        assert_eq!(meta.task_label(7, 9), "radar/n9", "node index past the registered names");
        assert_eq!(meta.task_label(1, 1), "i1/n1");
        assert_eq!(meta.app_label(7), "radar#7");
        assert_eq!(meta.app_label(8), "app8");
    }

    #[test]
    fn writer_is_send_but_not_sync() {
        fn assert_send<T: Send>() {}
        assert_send::<TraceWriter>();
        // Compile-time negative: `TraceWriter` must NOT be `Sync`, or two
        // threads could share `&TraceWriter` and race on the ring.
        // (Enforced by the `PhantomData<Cell<()>>` field; uncommenting
        // `fn assert_sync<T: Sync>() {}; assert_sync::<TraceWriter>();`
        // fails to compile.)
        let session = TraceSession::new();
        let w = session.sink().writer("moved");
        std::thread::spawn(move || w.emit(1, EventKind::PeBusy { pe: 0 })).join().unwrap();
        assert_eq!(session.events_recorded(), 1);
    }

    #[test]
    fn drop_report_names_overflowing_producers() {
        let session = TraceSession::with_capacity(2);
        let sink = session.sink();
        let a = sink.writer("wm");
        let b = sink.writer("rm-0");
        a.emit(0, EventKind::PeBusy { pe: 0 });
        b.emit(0, EventKind::PeIdle { pe: 1 });
        assert_eq!(session.drop_report(), None, "no drops, no report");

        for i in 0..6 {
            a.emit(i, EventKind::PeBusy { pe: 0 });
        }
        let report = session.drop_report().expect("overflow must produce a report");
        assert!(report.contains("dropped 5 events"), "{report}");
        assert!(report.contains("wm: 5"), "per-producer detail: {report}");
        assert!(!report.contains("rm-0"), "clean producers stay out of the report: {report}");
        assert!(report.contains("with_capacity"), "remediation hint: {report}");
    }

    #[test]
    fn publish_metrics_exports_ring_accounting() {
        let session = TraceSession::with_capacity(2);
        let sink = session.sink();
        let a = sink.writer("wm");
        let b = sink.writer("rm-0");
        for i in 0..5 {
            a.emit(i, EventKind::PeBusy { pe: 0 });
        }
        b.emit(0, EventKind::PeIdle { pe: 1 });

        let registry = dssoc_metrics::MetricsRegistry::new();
        session.publish_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.value("dssoc_trace_events", &[("producer", "wm")]), Some(2.0));
        assert_eq!(snap.value("dssoc_trace_ring_dropped", &[("producer", "wm")]), Some(3.0));
        assert_eq!(snap.value("dssoc_trace_events", &[("producer", "rm-0")]), Some(1.0));
        assert_eq!(snap.value("dssoc_trace_ring_dropped", &[("producer", "rm-0")]), Some(0.0));
        // One occupancy sample per producer.
        assert_eq!(snap.value("dssoc_trace_ring_occupancy", &[]), Some(2.0));
    }

    #[test]
    fn dma_event_round_trip() {
        let session = TraceSession::new();
        let w = session.sink().writer("rm-fft");
        w.emit(5, EventKind::Dma { pe: 2, phase: DmaPhase::In, start_ns: 5, end_ns: 10 });
        let ev = session.drain();
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0].kind, EventKind::Dma { phase: DmaPhase::In, .. }));
    }
}
