//! Bounded, drop-counted, single-producer event buffers.
//!
//! Each producer (the workload-manager thread, each resource-manager
//! thread) gets its own [`EventRing`], so recording never contends on a
//! shared lock: a push is one relaxed load, one slot write, and one
//! release store. The buffer is bounded — when full, new events are
//! *dropped* (never blocking the emulation's hot path) and a monotone
//! drop counter records how many, so an exported trace is either
//! complete or visibly truncated, never silently wrong.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::TraceEvent;

/// A bounded append-only event buffer for exactly one producer thread.
///
/// Safety contract: [`EventRing::push`] is `pub(crate)` and only
/// reachable through a [`TraceWriter`](crate::session::TraceWriter),
/// which is deliberately not `Clone` — the session hands out one writer
/// per ring, making the single-producer discipline structural. Readers
/// ([`EventRing::snapshot`]) may run concurrently: they only observe the
/// committed prefix published by the release store in `push`.
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    /// Committed length: slots `0..len` are initialized and visible.
    len: AtomicUsize,
    /// Events rejected because the buffer was full.
    dropped: AtomicU64,
}

// One producer writes distinct slots guarded by the release/acquire pair
// on `len`; concurrent readers only touch the committed prefix.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(MaybeUninit::uninit()));
        EventRing {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of committed events.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped because the ring was full. Monotone.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event. Returns `false` (and counts a drop) when the
    /// ring is full. Single-producer only — see the type-level contract.
    pub(crate) fn push(&self, ev: TraceEvent) -> bool {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: only the single producer writes slot `i`, and readers
        // do not touch it until the release store below publishes it.
        unsafe { (*self.slots[i].get()).write(ev) };
        self.len.store(i + 1, Ordering::Release);
        true
    }

    /// Copies out the committed prefix.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let n = self.len.load(Ordering::Acquire);
        (0..n)
            .map(|i| {
                // SAFETY: slots `0..n` were initialized before the
                // acquire-observed length reached `n`.
                unsafe { (*self.slots[i].get()).assume_init_read() }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use proptest::prelude::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent { ts_ns: seq * 10, seq, kind: EventKind::PeBusy { pe: (seq % 7) as u32 } }
    }

    #[test]
    fn fills_then_drops() {
        let ring = EventRing::new(4);
        for i in 0..4 {
            assert!(ring.push(ev(i)));
        }
        assert!(!ring.push(ev(4)));
        assert!(!ring.push(ev(5)));
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[3], ev(3));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.is_empty());
        assert!(ring.push(ev(0)));
        assert!(!ring.is_empty());
    }

    #[test]
    fn concurrent_reader_sees_committed_prefix() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::new(10_000));
        let r = Arc::clone(&ring);
        let reader = std::thread::spawn(move || {
            // Snapshot repeatedly while the producer is writing; every
            // snapshot must be a consistent prefix (seq == index).
            for _ in 0..200 {
                let snap = r.snapshot();
                for (i, e) in snap.iter().enumerate() {
                    assert_eq!(e.seq, i as u64, "torn or reordered prefix");
                }
            }
        });
        for i in 0..10_000 {
            ring.push(ev(i));
        }
        reader.join().unwrap();
        assert_eq!(ring.len(), 10_000);
        assert_eq!(ring.dropped(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The ISSUE's ring-buffer property: any push sequence loses
        /// nothing below capacity, and above capacity the drop counter
        /// is exactly the overflow — monotone, with the first
        /// `capacity` events retained in order.
        fn no_loss_below_capacity_monotone_drops_above(
            capacity in 1usize..64,
            pushes in 0usize..200,
        ) {
            let ring = EventRing::new(capacity);
            let mut last_dropped = 0u64;
            for i in 0..pushes {
                let accepted = ring.push(ev(i as u64));
                prop_assert_eq!(accepted, i < capacity);
                let d = ring.dropped();
                prop_assert!(d >= last_dropped, "drop counter went backwards");
                last_dropped = d;
            }
            let kept = pushes.min(capacity);
            prop_assert_eq!(ring.len(), kept);
            prop_assert_eq!(ring.dropped(), (pushes - kept) as u64);
            let snap = ring.snapshot();
            prop_assert_eq!(snap.len(), kept);
            for (i, e) in snap.iter().enumerate() {
                prop_assert_eq!(e.seq, i as u64, "events lost or reordered below capacity");
            }
        }
    }
}
