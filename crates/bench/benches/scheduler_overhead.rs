//! Isolated scheduler-invocation cost vs ready-queue length — the
//! microbenchmark behind Fig. 10(b): FRFS stays flat (early exit once
//! the PEs are exhausted), MET grows linearly (whole-queue scan with
//! cost estimates), EFT grows fastest (whole-queue scan with per-PE
//! projections) — plus the harness-level cost of a full run with a
//! cold-spawned engine vs a warm persistent resource pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

use dssoc_appmodel::app::{AppLibrary, ApplicationSpec};
use dssoc_appmodel::instance::{AppInstance, InstanceId};
use dssoc_appmodel::json::{AppJson, NodeJson, PlatformJson};
use dssoc_appmodel::{KernelRegistry, Workload, WorkloadSpec};
use dssoc_core::engine::{Emulation, EmulationConfig, OverheadMode, TimingMode};
use dssoc_core::job::CostSpec;
use dssoc_core::sched::{by_name, EstimateBook, FrfsScheduler, PeView, SchedContext};
use dssoc_core::task::{ReadyTask, Task};
use dssoc_core::SimTime;
use dssoc_platform::presets::zcu102;

/// Builds `n` independent ready tasks (all cpu-capable, every third also
/// fft-capable), mirroring a loaded SDR ready queue.
fn ready_tasks(n: usize) -> Vec<ReadyTask> {
    let mut reg = KernelRegistry::new();
    reg.register_fn("b.so", "k", |_| Ok(()));
    let mut dag = BTreeMap::new();
    for i in 0..n {
        let mut platforms = vec![PlatformJson {
            name: "cpu".into(),
            runfunc: "k".into(),
            shared_object: None,
            mean_exec_us: Some(50.0),
        }];
        if i % 3 == 0 {
            platforms.push(PlatformJson {
                name: "fft".into(),
                runfunc: "k".into(),
                shared_object: None,
                mean_exec_us: Some(80.0),
            });
        }
        dag.insert(
            format!("n{i:05}"),
            NodeJson { arguments: vec![], predecessors: vec![], successors: vec![], platforms },
        );
    }
    let json = AppJson {
        app_name: "bench".into(),
        shared_object: "b.so".into(),
        variables: BTreeMap::new(),
        dag,
    };
    let spec = ApplicationSpec::from_json(&json, &reg).unwrap();
    let inst =
        Arc::new(AppInstance::instantiate(spec, InstanceId(0), std::time::Duration::ZERO).unwrap());
    (0..n)
        .map(|i| ReadyTask {
            task: Task { instance: Arc::clone(&inst), node_idx: i },
            ready_at: SimTime(i as u64),
            seq: i as u64,
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let platform = zcu102(3, 2);
    let book = EstimateBook::new();
    let mut g = c.benchmark_group("scheduler_invocation");
    for len in [16usize, 128, 1024, 4096] {
        let ready = ready_tasks(len);
        for policy in ["frfs", "met", "eft", "random"] {
            g.bench_with_input(BenchmarkId::new(policy, len), &len, |b, _| {
                let mut sched = by_name(policy).unwrap();
                b.iter(|| {
                    // One idle core + one idle accelerator: the loaded
                    // steady state right after a completion.
                    let views: Vec<PeView<'_>> = platform
                        .pes
                        .iter()
                        .enumerate()
                        .map(|(i, pe)| PeView {
                            pe,
                            idle: i == 0 || i == 3,
                            available_at: SimTime(100_000),
                        })
                        .collect();
                    let ctx = SchedContext { now: SimTime(200_000), estimates: &book };
                    black_box(sched.schedule(&ready, &views, &ctx))
                })
            });
        }
    }
    g.finish();
}

/// A small real workload for pool-lifecycle benchmarking: one range
/// detection instance on a 2C+0F config, modeled timing, no overhead
/// sampling — the run itself is cheap, so engine setup cost dominates.
fn pool_setup() -> (AppLibrary, Workload, EmulationConfig) {
    let (library, _registry) = dssoc_apps::standard_library();
    let workload =
        WorkloadSpec::validation([("range_detection", 1usize)]).generate(&library).unwrap();
    let config = EmulationConfig {
        timing: TimingMode::Modeled,
        overhead: OverheadMode::None,
        cost: CostSpec::default(),
        reservation_depth: 0,
        trace: None,
        faults: None,
        metrics: None,
    };
    (library, workload, config)
}

/// Cold spawn vs warm pool: a fresh `Emulation` per run spawns and joins
/// one thread per PE every iteration; a persistent one parks its
/// resource managers between runs and reuses them.
fn bench_pool_reuse(c: &mut Criterion) {
    let platform = zcu102(2, 0);
    let (library, workload, config) = pool_setup();
    let mut g = c.benchmark_group("pool_lifecycle");

    g.bench_function("cold_spawn_per_run", |b| {
        b.iter(|| {
            let mut emu = Emulation::with_config(platform.clone(), config.clone()).unwrap();
            black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });

    g.bench_function("warm_pool_reuse", |b| {
        let mut emu = Emulation::with_config(platform.clone(), config.clone()).unwrap();
        b.iter(|| black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_policies, bench_pool_reuse);
criterion_main!(benches);
