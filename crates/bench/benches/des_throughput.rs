//! DES core throughput: simulated events per second vs workload size.
//!
//! The DES is the design-space-exploration workhorse (the DS3-class
//! role, paper §III-D): sweep grids run it thousands of times, so its
//! event-loop complexity is directly the DSE turnaround time. This
//! bench pins that trajectory: FRFS on a CPU-only `zcu102(3, 0)` with a
//! fully populated cost table (deterministic, no host measurement),
//! across workloads from ~250 to ~4000 tasks. Each task contributes one
//! dispatch and one completion event, so "events" here is 2x the task
//! count.
//!
//! Two paths are measured per size, matching the two ways the sweep
//! layer drives the DES:
//!
//! - **cold** — `DesSimulator::run`: scenario state (name table, cost
//!   grid, SoA slabs, estimate book) is rebuilt every run. This is the
//!   one-off CLI path.
//! - **warm** — `DesSimulator::run_compiled` against one
//!   [`CompiledScenario`], repeated on the same simulator: the run
//!   reuses the precompiled SoA slabs and the simulator's scratch arena
//!   (event queue, dense state arrays, estimate book values-only
//!   reset), so the hot loop is allocation-free. This is the
//!   `SweepCell` iteration / `JobRunner` steady state and the headline
//!   events/sec number. The scenario is driven directly (not through
//!   `JobRunner`) because the deterministic result cache would replay
//!   repeats instead of simulating them.
//!
//! Besides the criterion timings, a best-of-N summary is merged into
//! `BENCH_des.json` (see `dssoc_bench::report`) in both bench and
//! `--test` (CI smoke) modes, so every CI run records the current
//! events/sec alongside the numbers in `crates/bench/README.md`. The
//! warm events/sec additionally accumulates into a
//! `tasks_{n}_events_per_sec_series` rolling array (last 50 runs), so
//! the artifact carries the trajectory, not just the latest point.
//! `--floor <events/sec>` turns the summary into a perf gate: the run
//! fails if any size's warm throughput lands below the floor.
//!
//! ```sh
//! cargo bench -p dssoc-bench --bench des_throughput
//! cargo bench -p dssoc-bench --bench des_throughput -- --test --floor 2000000
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::{Workload, WorkloadSpec};
use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::job::{CompiledScenario, CostSpec, ScenarioSpec};
use dssoc_core::sched::by_name;
use dssoc_core::sweep::{default_workers, DesSweepRunner, SweepCell};
use dssoc_platform::cost::CostTable;
use dssoc_platform::pe::PlatformConfig;
use dssoc_platform::presets::zcu102;

/// range_detection instance counts giving ~250 / ~1000 / ~4000 tasks
/// (6 tasks per instance).
const SIZES: [usize; 3] = [42, 167, 667];

/// A deterministic cost table covering every runfunc of
/// `range_detection` on `platform` (same scheme as the cross-engine
/// differential test), so the DES never falls back to defaults.
fn full_cost_table(library: &AppLibrary, platform: &PlatformConfig) -> CostTable {
    let mut table = CostTable::new();
    let spec = library.get("range_detection").expect("reference app");
    for node in &spec.nodes {
        for pe in &platform.pes {
            if let Some(p) = node.platform(&pe.platform_key) {
                let d = p
                    .mean_exec
                    .unwrap_or_else(|| Duration::from_micros(50 + 10 * node.index as u64));
                table.set(p.runfunc.clone(), pe.class_name(), d);
            }
        }
    }
    table
}

fn make_sim(platform: &PlatformConfig, table: &CostTable) -> DesSimulator {
    DesSimulator::new(
        platform.clone(),
        DesConfig {
            cost: CostSpec::table(table.clone()),
            overhead_per_invocation: Duration::ZERO,
            trace: None,
            faults: None,
            metrics: None,
        },
    )
    .expect("platform")
}

fn workload(library: &AppLibrary, instances: usize) -> Arc<Workload> {
    Arc::new(
        WorkloadSpec::validation([("range_detection", instances)])
            .generate(library)
            .expect("workload"),
    )
}

/// Precompiles the scenario the warm path replays.
fn compile_scenario(
    library: &AppLibrary,
    platform: &PlatformConfig,
    table: &CostTable,
    wl: &Arc<Workload>,
) -> Arc<CompiledScenario> {
    let spec = ScenarioSpec::builder()
        .library(library.clone())
        .platform(platform.clone())
        .scheduler("frfs")
        .workload(Arc::clone(wl))
        .cost(CostSpec::table(table.clone()))
        .build()
        .expect("scenario");
    CompiledScenario::compile(spec).expect("compile")
}

/// One cold DES run (fresh FRFS policy, scenario state rebuilt),
/// returning the task count.
fn run_once(sim: &mut DesSimulator, wl: &Workload, library: &AppLibrary) -> usize {
    let mut sched = by_name("frfs").expect("library policy");
    let stats = sim.run(sched.as_mut(), wl, library).expect("simulation");
    stats.tasks.len()
}

/// One warm DES run (fresh FRFS policy, precompiled scenario + warm
/// simulator scratch), returning the task count.
fn run_warm(sim: &mut DesSimulator, scenario: &CompiledScenario) -> usize {
    let mut sched = by_name("frfs").expect("library policy");
    let stats = sim.run_compiled(sched.as_mut(), scenario).expect("simulation");
    stats.tasks.len()
}

fn bench_des_throughput(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    let platform = zcu102(3, 0);
    let table = full_cost_table(&library, &platform);
    let mut group = c.benchmark_group("des_throughput");
    group.sample_size(10);
    for &n in &SIZES {
        let wl = workload(&library, n);
        let mut sim = make_sim(&platform, &table);
        let tasks = run_once(&mut sim, &wl, &library);
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &wl, |b, wl| {
            b.iter(|| black_box(run_once(&mut sim, wl, &library)))
        });
        let scenario = compile_scenario(&library, &platform, &table, &wl);
        let mut sim = make_sim(&platform, &table);
        group.bench_with_input(BenchmarkId::new("tasks_warm", tasks), &scenario, |b, sc| {
            b.iter(|| black_box(run_warm(&mut sim, sc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des_throughput);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let floor: Option<f64> = args
        .iter()
        .position(|a| a == "--floor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    if !test_mode {
        benches();
    }

    // Best-of-N summary for BENCH_des.json — written in --test (CI
    // smoke) mode too, so the artifact tracks every CI run.
    let reps = if test_mode { 2 } else { 16 };
    let (library, _registry) = standard_library();
    let platform = zcu102(3, 0);
    let table = full_cost_table(&library, &platform);
    let mut report = BenchReport::new("des_throughput");
    let mut min_warm = f64::INFINITY;
    println!();
    println!("== des_throughput summary (best of {reps}) ==");
    for &n in &SIZES {
        let wl = workload(&library, n);
        let mut sim = make_sim(&platform, &table);
        let tasks = run_once(&mut sim, &wl, &library);
        let scenario = compile_scenario(&library, &platform, &table, &wl);
        // Untimed warm-up (~0.5 s): lets the frequency governor ramp
        // up, so best-of-N measures the hot-loop cost rather than the
        // host's idle clock.
        if !test_mode {
            let warm = Instant::now();
            while warm.elapsed() < Duration::from_millis(500) {
                black_box(run_warm(&mut sim, &scenario));
            }
        }
        let best_cold = (0..reps)
            .map(|_| {
                let start = Instant::now();
                black_box(run_once(&mut sim, &wl, &library));
                start.elapsed()
            })
            .min()
            .expect("reps > 0");
        // The first run_compiled after the cold runs re-primes the
        // estimate-book identity; exclude it from the timed reps.
        black_box(run_warm(&mut sim, &scenario));
        let best_warm = (0..reps)
            .map(|_| {
                let start = Instant::now();
                black_box(run_warm(&mut sim, &scenario));
                start.elapsed()
            })
            .min()
            .expect("reps > 0");
        // One dispatch + one completion event per task.
        let events = 2.0 * tasks as f64;
        let cold_eps = events / best_cold.as_secs_f64();
        let warm_eps = events / best_warm.as_secs_f64();
        min_warm = min_warm.min(warm_eps);
        println!(
            "  {tasks:>5} tasks: cold {:>10.3?} ({:>12.0} ev/s), warm {:>10.3?} ({:>12.0} ev/s)",
            best_cold, cold_eps, best_warm, warm_eps
        );
        report.set_f64(format!("tasks_{tasks}_run_us"), best_cold.as_secs_f64() * 1e6);
        report.set_f64(format!("tasks_{tasks}_events_per_sec"), cold_eps);
        report.set_f64(format!("tasks_{tasks}_warm_run_us"), best_warm.as_secs_f64() * 1e6);
        report.set_f64(format!("tasks_{tasks}_warm_events_per_sec"), warm_eps);
        // Rolling trajectory of the headline (warm) number.
        report.append_f64(format!("tasks_{tasks}_events_per_sec_series"), warm_eps);
    }

    // Parallel sweep scaling: an 8-cell DES grid (8 ZCU102 shapes,
    // FRFS, ~1000 tasks per run) timed sequentially vs across 4
    // workers. DES cells are pure virtual-time compute, so the grid
    // should scale with cores — this is the DSE turnaround claim.
    let iters = if test_mode { 1 } else { 20 };
    let grid_reps = if test_mode { 1 } else { 3 };
    let wl = workload(&library, 167);
    let table = full_cost_table(&library, &zcu102(3, 2));
    let config = DesConfig {
        cost: CostSpec::table(table),
        overhead_per_invocation: Duration::ZERO,
        trace: None,
        faults: None,
        metrics: None,
    };
    let cells: Vec<SweepCell> = [(1, 0), (2, 0), (3, 0), (1, 1), (2, 1), (3, 1), (1, 2), (2, 2)]
        .iter()
        .map(|&(cores, ffts)| {
            SweepCell::new(zcu102(cores, ffts), "frfs", Arc::clone(&wl)).iterations(iters)
        })
        .collect();
    // Cap at 4 so the recorded speedup reflects the "4-core runner"
    // configuration; on fewer cores the grid degrades gracefully (and
    // with a single core the parallel path falls back to sequential).
    let workers = default_workers().min(4);
    let time_grid = |parallel: bool| -> Duration {
        (0..grid_reps)
            .map(|_| {
                let mut runner = DesSweepRunner::with_config(&library, config.clone());
                let start = Instant::now();
                let results = if parallel {
                    runner.run_batch_parallel(&cells, workers)
                } else {
                    runner.run_batch(&cells)
                }
                .expect("grid");
                black_box(results);
                start.elapsed()
            })
            .min()
            .expect("reps > 0")
    };
    let sequential = time_grid(false);
    let parallel = time_grid(true);
    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "  {}-cell grid x{iters}: sequential {:.1?}, parallel({workers}) {:.1?} -> {speedup:.2}x",
        cells.len(),
        sequential,
        parallel
    );
    report.set_f64("sweep8_sequential_ms", sequential.as_secs_f64() * 1e3);
    report.set_f64("sweep8_parallel_ms", parallel.as_secs_f64() * 1e3);
    report.set_f64("sweep8_speedup", speedup);
    report.set_f64("sweep8_workers", workers as f64);

    match report.write() {
        Ok(path) => println!("bench summary -> {}", path.display()),
        Err(e) => eprintln!("warning: cannot write bench summary: {e}"),
    }

    // Perf gate (CI perf-smoke): every size's warm throughput must
    // clear the floor. Checked after the summary lands so the artifact
    // still records the failing numbers.
    if let Some(floor) = floor {
        if min_warm < floor {
            eprintln!("perf floor FAILED: warm {min_warm:.0} events/sec < floor {floor:.0}");
            std::process::exit(1);
        }
        println!("perf floor ok: warm {min_warm:.0} events/sec >= floor {floor:.0}");
    }
}
