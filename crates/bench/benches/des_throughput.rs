//! DES core throughput: simulated events per second vs workload size.
//!
//! The DES is the design-space-exploration workhorse (the DS3-class
//! role, paper §III-D): sweep grids run it thousands of times, so its
//! event-loop complexity is directly the DSE turnaround time. This
//! bench pins that trajectory: FRFS on a CPU-only `zcu102(3, 0)` with a
//! fully populated cost table (deterministic, no host measurement),
//! across workloads from ~250 to ~4000 tasks. Each task contributes one
//! dispatch and one completion event, so "events" here is 2x the task
//! count.
//!
//! Besides the criterion timings, a best-of-N summary is merged into
//! `BENCH_des.json` (see `dssoc_bench::report`) in both bench and
//! `--test` (CI smoke) modes, so every CI run records the current
//! events/sec alongside the numbers in `crates/bench/README.md`.
//!
//! ```sh
//! cargo bench -p dssoc-bench --bench des_throughput
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use dssoc_appmodel::app::AppLibrary;
use dssoc_appmodel::{Workload, WorkloadSpec};
use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::job::CostSpec;
use dssoc_core::sched::by_name;
use dssoc_core::sweep::{default_workers, DesSweepRunner, SweepCell};
use dssoc_platform::cost::CostTable;
use dssoc_platform::pe::PlatformConfig;
use dssoc_platform::presets::zcu102;

/// range_detection instance counts giving ~250 / ~1000 / ~4000 tasks
/// (6 tasks per instance).
const SIZES: [usize; 3] = [42, 167, 667];

/// A deterministic cost table covering every runfunc of
/// `range_detection` on `platform` (same scheme as the cross-engine
/// differential test), so the DES never falls back to defaults.
fn full_cost_table(library: &AppLibrary, platform: &PlatformConfig) -> CostTable {
    let mut table = CostTable::new();
    let spec = library.get("range_detection").expect("reference app");
    for node in &spec.nodes {
        for pe in &platform.pes {
            if let Some(p) = node.platform(&pe.platform_key) {
                let d = p
                    .mean_exec
                    .unwrap_or_else(|| Duration::from_micros(50 + 10 * node.index as u64));
                table.set(p.runfunc.clone(), pe.class_name(), d);
            }
        }
    }
    table
}

fn setup() -> (AppLibrary, DesSimulator) {
    let (library, _registry) = standard_library();
    let platform = zcu102(3, 0);
    let table = full_cost_table(&library, &platform);
    let sim = DesSimulator::new(
        platform,
        DesConfig {
            cost: CostSpec::table(table),
            overhead_per_invocation: Duration::ZERO,
            trace: None,
            faults: None,
            metrics: None,
        },
    )
    .expect("platform");
    (library, sim)
}

fn workload(library: &AppLibrary, instances: usize) -> Arc<Workload> {
    Arc::new(
        WorkloadSpec::validation([("range_detection", instances)])
            .generate(library)
            .expect("workload"),
    )
}

/// One full DES run (fresh FRFS policy), returning the task count.
fn run_once(sim: &DesSimulator, wl: &Workload, library: &AppLibrary) -> usize {
    let mut sched = by_name("frfs").expect("library policy");
    let stats = sim.run(sched.as_mut(), wl, library).expect("simulation");
    stats.tasks.len()
}

fn bench_des_throughput(c: &mut Criterion) {
    let (library, sim) = setup();
    let mut group = c.benchmark_group("des_throughput");
    group.sample_size(10);
    for &n in &SIZES {
        let wl = workload(&library, n);
        let tasks = run_once(&sim, &wl, &library);
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &wl, |b, wl| {
            b.iter(|| black_box(run_once(&sim, wl, &library)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des_throughput);

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if !test_mode {
        benches();
    }

    // Best-of-N summary for BENCH_des.json — written in --test (CI
    // smoke) mode too, so the artifact tracks every CI run.
    let reps = if test_mode { 2 } else { 16 };
    let (library, sim) = setup();
    let mut report = BenchReport::new("des_throughput");
    println!();
    println!("== des_throughput summary (best of {reps}) ==");
    for &n in &SIZES {
        let wl = workload(&library, n);
        let tasks = run_once(&sim, &wl, &library);
        // Untimed warm-up (~0.5 s): lets the frequency governor ramp
        // up, so best-of-N measures the hot-loop cost rather than the
        // host's idle clock.
        if !test_mode {
            let warm = Instant::now();
            while warm.elapsed() < Duration::from_millis(500) {
                black_box(run_once(&sim, &wl, &library));
            }
        }
        let best = (0..reps)
            .map(|_| {
                let start = Instant::now();
                black_box(run_once(&sim, &wl, &library));
                start.elapsed()
            })
            .min()
            .expect("reps > 0");
        // One dispatch + one completion event per task.
        let events_per_sec = 2.0 * tasks as f64 / best.as_secs_f64();
        println!(
            "  {tasks:>5} tasks: {:>10.3?} per run, {:>12.0} events/sec",
            best, events_per_sec
        );
        report.set_f64(format!("tasks_{tasks}_run_us"), best.as_secs_f64() * 1e6);
        report.set_f64(format!("tasks_{tasks}_events_per_sec"), events_per_sec);
    }

    // Parallel sweep scaling: an 8-cell DES grid (8 ZCU102 shapes,
    // FRFS, ~1000 tasks per run) timed sequentially vs across 4
    // workers. DES cells are pure virtual-time compute, so the grid
    // should scale with cores — this is the DSE turnaround claim.
    let iters = if test_mode { 1 } else { 20 };
    let grid_reps = if test_mode { 1 } else { 3 };
    let wl = workload(&library, 167);
    let table = full_cost_table(&library, &zcu102(3, 2));
    let config = DesConfig {
        cost: CostSpec::table(table),
        overhead_per_invocation: Duration::ZERO,
        trace: None,
        faults: None,
        metrics: None,
    };
    let cells: Vec<SweepCell> = [(1, 0), (2, 0), (3, 0), (1, 1), (2, 1), (3, 1), (1, 2), (2, 2)]
        .iter()
        .map(|&(cores, ffts)| {
            SweepCell::new(zcu102(cores, ffts), "frfs", Arc::clone(&wl)).iterations(iters)
        })
        .collect();
    // Cap at 4 so the recorded speedup reflects the "4-core runner"
    // configuration; on fewer cores the grid degrades gracefully (and
    // with a single core the parallel path falls back to sequential).
    let workers = default_workers().min(4);
    let time_grid = |parallel: bool| -> Duration {
        (0..grid_reps)
            .map(|_| {
                let mut runner = DesSweepRunner::with_config(&library, config.clone());
                let start = Instant::now();
                let results = if parallel {
                    runner.run_batch_parallel(&cells, workers)
                } else {
                    runner.run_batch(&cells)
                }
                .expect("grid");
                black_box(results);
                start.elapsed()
            })
            .min()
            .expect("reps > 0")
    };
    let sequential = time_grid(false);
    let parallel = time_grid(true);
    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    println!(
        "  {}-cell grid x{iters}: sequential {:.1?}, parallel({workers}) {:.1?} -> {speedup:.2}x",
        cells.len(),
        sequential,
        parallel
    );
    report.set_f64("sweep8_sequential_ms", sequential.as_secs_f64() * 1e3);
    report.set_f64("sweep8_parallel_ms", parallel.as_secs_f64() * 1e3);
    report.set_f64("sweep8_speedup", speedup);
    report.set_f64("sweep8_workers", workers as f64);

    match report.write() {
        Ok(path) => println!("bench summary -> {}", path.display()),
        Err(e) => eprintln!("warning: cannot write bench summary: {e}"),
    }
}
