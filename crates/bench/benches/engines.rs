//! Turn-around-time comparison between the threaded emulation engine and
//! the discrete-event baseline (paper §III-D): the DES is faster per run
//! because it executes nothing — and that is exactly why it cannot do
//! functional validation or capture scheduling overhead. The emulator
//! pays for running real kernels but stays far below cycle-accurate
//! simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::engine::{Emulation, EmulationConfig, OverheadMode, TimingMode};
use dssoc_core::job::CostSpec;
use dssoc_core::FrfsScheduler;
use dssoc_platform::cost::CostTable;
use dssoc_platform::presets::zcu102;

fn cost_table() -> CostTable {
    let mut t = CostTable::new();
    for k in [
        "range_detect_LFM",
        "range_detect_FFT_0_CPU",
        "range_detect_FFT_1_CPU",
        "range_detect_MUL",
        "range_detect_IFFT_CPU",
        "range_detect_MAX",
    ] {
        t.set(k, "cortex-a53", Duration::from_micros(30));
    }
    t
}

fn bench_engines(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    let workload =
        WorkloadSpec::validation([("range_detection", 16usize)]).generate(&library).unwrap();
    let table = cost_table();

    let mut g = c.benchmark_group("turnaround");
    g.sample_size(20);

    g.bench_function("emulator_modeled", |b| {
        b.iter(|| {
            let mut emu = Emulation::with_config(
                zcu102(3, 0),
                EmulationConfig {
                    timing: TimingMode::Modeled,
                    overhead: OverheadMode::None,
                    cost: CostSpec::table(table.clone()),
                    reservation_depth: 0,
                    trace: None,
                    faults: None,
                    metrics: None,
                },
            )
            .unwrap();
            black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });

    g.bench_function("emulator_measured_costs", |b| {
        b.iter(|| {
            let mut emu = Emulation::new(zcu102(3, 0)).unwrap();
            black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });

    g.bench_function("des_baseline", |b| {
        b.iter(|| {
            let mut des = DesSimulator::new(
                zcu102(3, 0),
                DesConfig {
                    cost: CostSpec::table(table.clone()),
                    overhead_per_invocation: Duration::ZERO,
                    trace: None,
                    faults: None,
                    metrics: None,
                },
            )
            .unwrap();
            black_box(des.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
