//! Cost of live metrics (the `dssoc-metrics` subsystem), at two
//! granularities:
//!
//! * **record path** — ns/op of one counter-cell increment and one
//!   histogram-cell record (single-writer cells, relaxed load+store;
//!   the engines pay one of these per instrumented event), plus the
//!   cost of a full registry snapshot while producers exist;
//! * **end to end** — the same 4-PE validation run with metrics off vs
//!   on, for both engines. The budget is <3% added wall time on the
//!   threaded engine (see README.md for the measured numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::engine::{Emulation, EmulationConfig, OverheadMode, TimingMode};
use dssoc_core::job::CostSpec;
use dssoc_core::FrfsScheduler;
use dssoc_metrics::MetricsRegistry;
use dssoc_platform::cost::CostTable;
use dssoc_platform::pe::PlatformConfig;
use dssoc_platform::presets::zcu102;

/// Covers every `(runfunc, PE class)` pair range_detection can hit on
/// `platform`, so neither engine falls back to host measurement.
fn full_cost_table(platform: &PlatformConfig) -> CostTable {
    let (library, _registry) = standard_library();
    let spec = library.get("range_detection").expect("bundled app");
    let mut table = CostTable::new();
    for node in &spec.nodes {
        for pe in &platform.pes {
            if let Some(p) = node.platform(&pe.platform_key) {
                let d = p.mean_exec.unwrap_or_else(|| Duration::from_micros(30));
                table.set(p.runfunc.clone(), pe.class_name(), d);
            }
        }
    }
    table
}

fn bench_record_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_record");

    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_counter", &[("pe", "Core1")]).cell();
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let hist = registry.histogram("bench_hist", &[]).cell();
    let mut v = 1u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 40));
        })
    });

    // Snapshot with a realistic family count: the ~20 engine families
    // plus a handful of per-PE/per-app label sets.
    for pe in ["Core1", "Core2", "Core3", "FFT1"] {
        registry.counter("bench_tasks", &[("pe", pe)]).cell().add(7);
        registry.histogram("bench_exec_ns", &[("pe", pe)]).cell().record(1000);
    }
    g.bench_function("registry_snapshot", |b| b.iter(|| black_box(registry.snapshot())));

    g.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    // Same shape as trace_overhead: long enough that per-run attach
    // cost (cell registration per PE/app family) amortizes the way it
    // does in a sweep, so the delta reflects steady-state record cost.
    let workload =
        WorkloadSpec::validation([("range_detection", 64usize)]).generate(&library).unwrap();
    let platform = zcu102(3, 1); // 4 PEs: 3 cores + 1 FFT accelerator
    let table = full_cost_table(&platform);
    let config = EmulationConfig {
        timing: TimingMode::Modeled,
        overhead: OverheadMode::None,
        cost: CostSpec::table(table.clone()),
        reservation_depth: 0,
        trace: None,
        faults: None,
        metrics: None,
    };

    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(30);

    // The warm pool is reused across iterations (as in a sweep), so the
    // measured delta is the per-run metrics cost, not thread spawning.
    let mut emu = Emulation::with_config(platform.clone(), config.clone()).unwrap();

    // Metrics are recorded off the emulation clock: enabling them must
    // not move the modeled makespan at all (the <3% budget is about
    // host wall time; the model itself sees 0%).
    let base = emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap().makespan;
    emu.set_metrics(Some(MetricsRegistry::new()));
    let metered = emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap().makespan;
    emu.set_metrics(None);
    assert_eq!(base, metered, "enabling metrics perturbed the modeled makespan");

    g.bench_function("emulator_off", |b| {
        b.iter(|| black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap()))
    });
    let registry = MetricsRegistry::new();
    emu.set_metrics(Some(registry.clone()));
    g.bench_function("emulator_on", |b| {
        b.iter(|| black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap()))
    });
    emu.set_metrics(None);
    assert!(
        registry.snapshot().value("dssoc_tasks_ready", &[]).unwrap_or(0.0) > 0.0,
        "metered runs must have published samples"
    );

    g.bench_function("des_off", |b| {
        b.iter(|| {
            let mut des = DesSimulator::new(
                platform.clone(),
                DesConfig {
                    cost: CostSpec::table(table.clone()),
                    overhead_per_invocation: Duration::ZERO,
                    trace: None,
                    faults: None,
                    metrics: None,
                },
            )
            .unwrap();
            black_box(des.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });
    let registry = MetricsRegistry::new();
    g.bench_function("des_on", |b| {
        b.iter(|| {
            let mut des = DesSimulator::new(
                platform.clone(),
                DesConfig {
                    cost: CostSpec::table(table.clone()),
                    overhead_per_invocation: Duration::ZERO,
                    trace: None,
                    faults: None,
                    metrics: Some(registry.clone()),
                },
            )
            .unwrap();
            black_box(des.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_record_path, bench_metrics_overhead);
criterion_main!(benches);
