//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **DMA model sweep** — where the CPU/accelerator crossover sits as a
//!   function of the DMA setup cost (the mechanism behind the paper's
//!   "128-point FFTs are faster on a core" finding).
//! * **Contention model** — the 2C+2F plateau with and without the
//!   shared-host-core penalty for accelerator manager threads.
//! * **Overlay speed** — how a slower management core inflates makespan
//!   via scheduling overhead (the Fig. 11 explanation).
//! * **Reservation-queue surrogate** — the paper's stated future work:
//!   what a reservation queue would buy is approximated by charging zero
//!   scheduling overhead (DES knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::engine::Emulation;
use dssoc_core::job::CostSpec;
use dssoc_core::FrfsScheduler;
use dssoc_platform::accel::FftAccelerator;
use dssoc_platform::cost::CostTable;
use dssoc_platform::dma::DmaModel;
use dssoc_platform::presets::{zcu102, zcu102_fft_accel};

/// DMA-parameter sweep: total accelerator-visible latency for a 128-pt
/// FFT under different setup costs.
fn bench_dma_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dma_setup");
    for setup_us in [0u64, 7, 28, 112] {
        let mut model = zcu102_fft_accel();
        model.dma = DmaModel { setup: Duration::from_micros(setup_us), bytes_per_sec: 400e6 };
        let dev = FftAccelerator::new(model);
        g.bench_with_input(BenchmarkId::new("fft128_device", setup_us), &setup_us, |b, _| {
            b.iter(|| {
                let mut data = vec![dssoc_dsp::complex::Complex32::ONE; 128];
                let report = dev.process(&mut data, false).unwrap();
                black_box(report.total())
            })
        });
    }
    g.finish();
}

/// Contention ablation: the same 2C+2F workload with and without the
/// shared-core context-switch penalty.
fn bench_contention(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    let workload =
        WorkloadSpec::validation([("range_detection", 8usize)]).generate(&library).unwrap();
    let mut g = c.benchmark_group("ablation_contention_2c2f");
    g.sample_size(15);
    for (label, penalty_us) in [("modeled", 10u64), ("disabled", 0)] {
        g.bench_with_input(BenchmarkId::new(label, penalty_us), &penalty_us, |b, &p| {
            b.iter(|| {
                let mut platform = zcu102(2, 2);
                platform.contention.context_switch = Duration::from_micros(p);
                let mut emu = Emulation::new(platform).unwrap();
                let stats = emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap();
                black_box(stats.makespan)
            })
        });
    }
    g.finish();
}

/// Overlay-speed ablation: a slower management core inflates charged
/// scheduling overhead and thereby the makespan.
fn bench_overlay_speed(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    let workload =
        WorkloadSpec::validation([("range_detection", 12usize)]).generate(&library).unwrap();
    let mut g = c.benchmark_group("ablation_overlay_speed");
    g.sample_size(15);
    for speed_pct in [100u64, 50, 15] {
        g.bench_with_input(BenchmarkId::new("makespan", speed_pct), &speed_pct, |b, &s| {
            b.iter(|| {
                let mut platform = zcu102(3, 0);
                platform.overlay.speed = s as f64 / 100.0;
                let mut emu = Emulation::new(platform).unwrap();
                let stats = emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap();
                black_box(stats.makespan)
            })
        });
    }
    g.finish();
}

/// Reservation-queue surrogate: zero-overhead dispatch via the DES knob,
/// vs a fixed per-invocation scheduling charge.
fn bench_reservation_surrogate(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    let workload =
        WorkloadSpec::validation([("range_detection", 12usize)]).generate(&library).unwrap();
    let mut table = CostTable::new();
    for k in [
        "range_detect_LFM",
        "range_detect_FFT_0_CPU",
        "range_detect_FFT_1_CPU",
        "range_detect_MUL",
        "range_detect_IFFT_CPU",
        "range_detect_MAX",
    ] {
        table.set(k, "cortex-a53", Duration::from_micros(30));
    }
    let mut g = c.benchmark_group("ablation_reservation");
    g.sample_size(20);
    for (label, ov_us) in [("per_completion_scheduling", 25u64), ("reservation_queue", 0)] {
        g.bench_with_input(BenchmarkId::new(label, ov_us), &ov_us, |b, &ov| {
            b.iter(|| {
                let mut des = DesSimulator::new(
                    zcu102(3, 0),
                    DesConfig {
                        cost: CostSpec::table(table.clone()),
                        overhead_per_invocation: Duration::from_micros(ov),
                        trace: None,
                        faults: None,
                        metrics: None,
                    },
                )
                .unwrap();
                let stats = des.run(&mut FrfsScheduler::new(), &workload, &library).unwrap();
                black_box(stats.makespan)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_dma_sweep,
    bench_contention,
    bench_overlay_speed,
    bench_reservation_surrogate
);
criterion_main!(benches);
