//! Cost of event tracing (the `dssoc-trace` subsystem): the same
//! 4-PE validation run with tracing off vs on, for both engines. The
//! emit path is a sequence-counter increment plus one bounded ring
//! write behind a single `Option` branch, so the target budget is
//! <3% added wall time on the threaded engine (see README.md for the
//! measured numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::engine::{Emulation, EmulationConfig, OverheadMode, TimingMode};
use dssoc_core::job::CostSpec;
use dssoc_core::FrfsScheduler;
use dssoc_platform::cost::CostTable;
use dssoc_platform::pe::PlatformConfig;
use dssoc_platform::presets::zcu102;
use dssoc_trace::TraceSession;

/// Covers every `(runfunc, PE class)` pair range_detection can hit on
/// `platform`, so neither engine falls back to host measurement.
fn full_cost_table(platform: &PlatformConfig) -> CostTable {
    let (library, _registry) = standard_library();
    let spec = library.get("range_detection").expect("bundled app");
    let mut table = CostTable::new();
    for node in &spec.nodes {
        for pe in &platform.pes {
            if let Some(p) = node.platform(&pe.platform_key) {
                let d = p.mean_exec.unwrap_or_else(|| Duration::from_micros(30));
                table.set(p.runfunc.clone(), pe.class_name(), d);
            }
        }
    }
    table
}

fn bench_trace_overhead(c: &mut Criterion) {
    let (library, _registry) = standard_library();
    // Long enough that the per-run trace setup (session + ring
    // allocation, metadata registration) amortizes the way it does in a
    // real sweep; the delta then reflects steady-state emit cost.
    let workload =
        WorkloadSpec::validation([("range_detection", 64usize)]).generate(&library).unwrap();
    let platform = zcu102(3, 1); // 4 PEs: 3 cores + 1 FFT accelerator
    let table = full_cost_table(&platform);
    let config = EmulationConfig {
        timing: TimingMode::Modeled,
        overhead: OverheadMode::None,
        cost: CostSpec::table(table.clone()),
        reservation_depth: 0,
        trace: None,
        faults: None,
        metrics: None,
    };

    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(30);

    // The warm pool is reused across iterations (as in a sweep), so the
    // measured delta is the per-run tracing cost, not thread spawning.
    let mut emu = Emulation::with_config(platform.clone(), config.clone()).unwrap();
    g.bench_function("emulator_off", |b| {
        b.iter(|| black_box(emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap()))
    });
    g.bench_function("emulator_on", |b| {
        b.iter(|| {
            let session = TraceSession::new();
            emu.set_trace(Some(session.sink()));
            let stats = emu.run(&mut FrfsScheduler::new(), &workload, &library).unwrap();
            emu.set_trace(None);
            assert_eq!(session.dropped(), 0);
            black_box((stats, session.events_recorded()))
        })
    });

    g.bench_function("des_off", |b| {
        b.iter(|| {
            let mut des = DesSimulator::new(
                platform.clone(),
                DesConfig {
                    cost: CostSpec::table(table.clone()),
                    overhead_per_invocation: Duration::ZERO,
                    trace: None,
                    faults: None,
                    metrics: None,
                },
            )
            .unwrap();
            black_box(des.run(&mut FrfsScheduler::new(), &workload, &library).unwrap())
        })
    });
    g.bench_function("des_on", |b| {
        b.iter(|| {
            let session = TraceSession::new();
            let mut des = DesSimulator::new(
                platform.clone(),
                DesConfig {
                    cost: CostSpec::table(table.clone()),
                    overhead_per_invocation: Duration::ZERO,
                    trace: Some(session.sink()),
                    faults: None,
                    metrics: None,
                },
            )
            .unwrap();
            let stats = des.run(&mut FrfsScheduler::new(), &workload, &library).unwrap();
            assert_eq!(session.dropped(), 0);
            black_box((stats, session.events_recorded()))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
