//! Microbenchmarks of the DSP substrate kernels — the per-task costs
//! everything else in the emulation is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dssoc_dsp::chirp::lfm_chirp;
use dssoc_dsp::coding::{ConvolutionalEncoder, ViterbiDecoder};
use dssoc_dsp::complex::Complex32;
use dssoc_dsp::correlate::xcorr_fft;
use dssoc_dsp::fft::{dft, fft_in_place};

fn signal(n: usize) -> Vec<Complex32> {
    (0..n).map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos())).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [128usize, 512, 4096] {
        let input = signal(n);
        g.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut data = input.clone();
                fft_in_place(&mut data);
                black_box(data)
            })
        });
    }
    g.finish();
}

fn bench_dft(c: &mut Criterion) {
    let mut g = c.benchmark_group("dft_naive");
    g.sample_size(20);
    for n in [128usize, 512] {
        let input = signal(n);
        g.bench_with_input(BenchmarkId::new("o_n2", n), &n, |b, _| {
            b.iter(|| black_box(dft(&input)))
        });
    }
    g.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let msg: Vec<u8> = (0..64).map(|i| ((i * 5 + 1) % 2) as u8).collect();
    let coded = ConvolutionalEncoder::new().encode_terminated(&msg);
    let dec = ViterbiDecoder::new();
    c.bench_function("viterbi_decode_64bit_frame", |b| {
        b.iter(|| black_box(dec.decode_terminated(&coded)))
    });
}

fn bench_xcorr(c: &mut Criterion) {
    let pulse = lfm_chirp(128, 0.0, 2e6, 8e6);
    let rx = signal(512);
    c.bench_function("xcorr_fft_512x128", |b| b.iter(|| black_box(xcorr_fft(&rx, &pulse))));
}

fn bench_chirp(c: &mut Criterion) {
    c.bench_function("lfm_chirp_512", |b| b.iter(|| black_box(lfm_chirp(512, 0.0, 2e6, 8e6))));
}

criterion_group!(benches, bench_fft, bench_dft, bench_viterbi, bench_xcorr, bench_chirp);
criterion_main!(benches);
