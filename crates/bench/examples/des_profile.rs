//! Profiler driver: hammers the warm DES path (`run_compiled` on one
//! precompiled scenario) so a sampling profiler sees only the hot loop.
//!
//! ```sh
//! cargo build --release --example des_profile -p dssoc-bench
//! gprofng collect app -o /tmp/des.er target/release/examples/des_profile 2000
//! gprofng display text -functions /tmp/des.er | head -40
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_core::des::{DesConfig, DesSimulator};
use dssoc_core::job::{CompiledScenario, CostSpec, ScenarioSpec};
use dssoc_core::sched::by_name;
use dssoc_platform::cost::CostTable;
use dssoc_platform::presets::zcu102;

fn main() {
    let reps: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(1000);
    let instances: usize = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(667);

    let (library, _registry) = standard_library();
    let platform = zcu102(3, 0);
    let mut table = CostTable::new();
    let spec = library.get("range_detection").expect("reference app");
    for node in &spec.nodes {
        for pe in &platform.pes {
            if let Some(p) = node.platform(&pe.platform_key) {
                let d = p
                    .mean_exec
                    .unwrap_or_else(|| Duration::from_micros(50 + 10 * node.index as u64));
                table.set(p.runfunc.clone(), pe.class_name(), d);
            }
        }
    }
    let wl = Arc::new(
        WorkloadSpec::validation([("range_detection", instances)])
            .generate(&library)
            .expect("workload"),
    );
    let scenario = CompiledScenario::compile(
        ScenarioSpec::builder()
            .library(library)
            .platform(platform.clone())
            .scheduler("frfs")
            .workload(wl)
            .cost(CostSpec::table(table.clone()))
            .build()
            .expect("scenario"),
    )
    .expect("compile");
    let mut sim = DesSimulator::new(
        platform,
        DesConfig {
            cost: CostSpec::table(table),
            overhead_per_invocation: Duration::ZERO,
            trace: None,
            faults: None,
            metrics: None,
        },
    )
    .expect("platform");
    let mut sched = by_name("frfs").expect("library policy");

    let mut tasks = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        let stats = sim.run_compiled(sched.as_mut(), &scenario).expect("simulation");
        tasks = black_box(stats.tasks.len());
    }
    let elapsed = start.elapsed();
    let per_run = elapsed / reps as u32;
    println!(
        "{reps} runs x {tasks} tasks: {elapsed:.2?} total, {per_run:.2?}/run, {:.0} events/sec",
        2.0 * tasks as f64 / per_run.as_secs_f64()
    );
}
