//! Machine-readable bench summaries (`BENCH_des.json`).
//!
//! Every bench bin (and the `des_throughput` bench) merges its key
//! numbers into one JSON file so the performance trajectory is tracked
//! across PRs: CI uploads the file as an artifact, and
//! `crates/bench/README.md` records the before/after milestones.
//!
//! The file is a flat object of sections, one per bench bin:
//!
//! ```json
//! { "des_throughput": { "tasks_1002_events_per_sec": 1.9e6, ... },
//!   "fig9": { "median_ms_3C+0F": 2.97, ... } }
//! ```
//!
//! Sections are replaced wholesale on write; other bins' sections are
//! preserved, so running the bins in any order accumulates one summary.

use std::collections::BTreeMap;
use std::path::PathBuf;

use serde_json::Value;

/// Environment variable overriding the summary file location.
pub const BENCH_JSON_ENV: &str = "BENCH_DES_JSON";

/// Default summary file name, written to the workspace root.
pub const BENCH_JSON_FILE: &str = "BENCH_des.json";

/// One bench bin's summary section, merged into `BENCH_des.json` on
/// [`BenchReport::write`].
#[derive(Debug)]
pub struct BenchReport {
    section: String,
    values: BTreeMap<String, Value>,
    appends: BTreeMap<String, Vec<f64>>,
}

/// Series keys keep at most this many trailing samples, so the summary
/// file stays a rolling window rather than growing without bound.
const SERIES_CAP: usize = 50;

impl BenchReport {
    /// An empty section named after the bench bin.
    pub fn new(section: impl Into<String>) -> Self {
        BenchReport { section: section.into(), values: BTreeMap::new(), appends: BTreeMap::new() }
    }

    /// Records one metric (`json!`-built value).
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut Self {
        self.values.insert(key.into(), value);
        self
    }

    /// Records one float metric.
    pub fn set_f64(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.set(key, serde_json::to_value(&value))
    }

    /// Appends one sample to a series metric. Unlike [`set_f64`], series
    /// keys survive the wholesale section replacement on [`write`]: the
    /// prior array is read back from the summary file and the new
    /// samples are appended (keeping the last [`SERIES_CAP`]), so
    /// repeated CI runs accumulate a trajectory per key.
    ///
    /// [`set_f64`]: BenchReport::set_f64
    /// [`write`]: BenchReport::write
    pub fn append_f64(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.appends.entry(key.into()).or_default().push(value);
        self
    }

    /// The summary file path: `$BENCH_DES_JSON`, or `BENCH_des.json` at
    /// the workspace root. The default is anchored to the source tree
    /// rather than the working directory because cargo runs bench
    /// targets from the package directory but bins from the invocation
    /// directory — every harness must merge into the same file.
    pub fn path() -> PathBuf {
        std::env::var(BENCH_JSON_ENV).map(PathBuf::from).unwrap_or_else(|_| {
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop(); // crates/
            p.pop(); // workspace root
            p.push(BENCH_JSON_FILE);
            p
        })
    }

    /// Merges this section into the summary file (other sections are
    /// preserved; a corrupt or missing file is started fresh) and
    /// returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = Self::path();
        let mut sections: BTreeMap<String, Value> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str::<Value>(&text).ok())
            .and_then(|v| v.as_object().cloned())
            .unwrap_or_default();
        let mut values = self.values.clone();
        for (key, new_samples) in &self.appends {
            let mut series: Vec<f64> = sections
                .get(&self.section)
                .and_then(|s| s.as_object())
                .and_then(|s| s.get(key))
                .and_then(|v| v.as_array())
                .map(|a| a.iter().filter_map(|v| v.as_f64()).collect())
                .unwrap_or_default();
            series.extend_from_slice(new_samples);
            if series.len() > SERIES_CAP {
                series.drain(..series.len() - SERIES_CAP);
            }
            values.insert(
                key.clone(),
                Value::Array(series.iter().map(serde_json::to_value).collect()),
            );
        }
        sections.insert(self.section.clone(), Value::Object(values));
        let body = serde_json::to_string_pretty(&Value::Object(sections))
            .expect("bench summary serializes")
            + "\n";
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_merge_and_replace() {
        let dir = std::env::temp_dir().join("dssoc_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_des.json");
        let _ = std::fs::remove_file(&path);
        std::env::set_var(BENCH_JSON_ENV, &path);

        let mut a = BenchReport::new("alpha");
        a.set_f64("x", 1.5);
        a.write().unwrap();
        let mut b = BenchReport::new("beta");
        b.set("label", serde_json::to_value("hi"));
        b.write().unwrap();
        // Re-writing a section replaces it without touching the other.
        let mut a2 = BenchReport::new("alpha");
        a2.set_f64("y", 2.0);
        a2.write().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(v["alpha"]["x"].is_null(), "replaced section dropped stale key");
        assert_eq!(v["alpha"]["y"].as_f64(), Some(2.0));
        assert_eq!(v["beta"]["label"].as_str(), Some("hi"));

        // Series keys survive section replacement: each write appends to
        // the array persisted by the previous one.
        for sample in [1.0f64, 2.0, 3.0] {
            let mut r = BenchReport::new("alpha");
            r.set_f64("y", sample);
            r.append_f64("series", sample);
            r.write().unwrap();
        }
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let series: Vec<f64> =
            v["alpha"]["series"].as_array().unwrap().iter().filter_map(|s| s.as_f64()).collect();
        assert_eq!(series, vec![1.0, 2.0, 3.0]);
        assert_eq!(v["alpha"]["y"].as_f64(), Some(3.0));

        // The rolling window caps the series length.
        let mut r = BenchReport::new("alpha");
        for i in 0..(2 * SERIES_CAP) {
            r.append_f64("series", i as f64);
        }
        r.write().unwrap();
        let v: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let series = v["alpha"]["series"].as_array().unwrap();
        assert_eq!(series.len(), SERIES_CAP);
        assert_eq!(series.last().unwrap().as_f64(), Some((2 * SERIES_CAP - 1) as f64));
        std::env::remove_var(BENCH_JSON_ENV);
    }
}
