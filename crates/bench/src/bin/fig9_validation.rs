//! Fig. 9 — validation-mode execution time (a) and PE utilization (b)
//! across DSSoC configurations.
//!
//! Paper setup: one instance each of pulse Doppler, range detection, and
//! WiFi on ZCU102; FRFS; 50 iterations for the box plot; configurations
//! 1C+0F, 1C+1F, 1C+2F, 2C+0F, 2C+1F, 2C+2F, 3C+0F.
//!
//! Expected shape (paper §III-C): execution time improves with PE count;
//! adding a CPU core helps more than adding a 128-point FFT accelerator
//! (DMA overhead dominates small transforms); 2C+2F ≈ 2C+1F because the
//! two accelerator manager threads share a host core and preempt each
//! other; 3C+0F is best.
//!
//! ```sh
//! cargo run --release --bin fig9_validation [iterations]
//! ```

use std::sync::Arc;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::{print_summary_row, run_sweep_with_progress, summarize, sweep_workers};
use dssoc_core::platform_preset;
use dssoc_core::prelude::*;

fn main() {
    let iterations: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let (library, _registry) = standard_library();
    // The paper's workload: single instances of Pulse Doppler, range
    // detection, and WiFi.
    let workload = Arc::new(
        WorkloadSpec::validation([
            ("pulse_doppler", 1usize),
            ("range_detection", 1usize),
            ("wifi_tx", 1usize),
            ("wifi_rx", 1usize),
        ])
        .generate(&library)
        .expect("workload"),
    );

    println!(
        "== Fig. 9(a): workload execution time, validation mode, FRFS ({iterations} iterations) =="
    );
    println!();

    let configs = [(1usize, 0usize), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2), (3, 0)];
    let cells: Vec<SweepCell> = configs
        .iter()
        .map(|&(cores, ffts)| {
            SweepCell::new(
                platform_preset(&format!("zcu102:{cores}C+{ffts}F")).expect("preset"),
                "frfs",
                Arc::clone(&workload),
            )
            .label(format!("{cores}C+{ffts}F"))
            .iterations(iterations)
            .warmup(iterations > 1)
        })
        .collect();
    let results = run_sweep_with_progress(SweepRunner::new(&library), &cells, sweep_workers(1))
        .expect("sweep");

    let mut report = BenchReport::new("fig9");
    let mut medians = Vec::new();
    for (&(cores, ffts), result) in configs.iter().zip(&results) {
        let s = summarize(&result.makespans_ms);
        print_summary_row(&result.label, &s, "ms");
        report.set_f64(format!("median_ms_{}", result.label), s.median);
        medians.push(((cores, ffts), s.median));
    }

    println!();
    println!("== Fig. 9(b): mean PE utilization (last iteration) ==");
    println!();
    for result in &results {
        print!("{} : ", result.label);
        for (pe, u) in result.stats.utilizations() {
            print!("{}={:.1}%  ", result.stats.pe_names[&pe], u * 100.0);
        }
        println!();
    }

    // --- Shape checks against the paper's findings.
    println!();
    println!("== shape checks (paper §III-C) ==");
    let med =
        |c: usize, f: usize| medians.iter().find(|((cc, ff), _)| *cc == c && *ff == f).unwrap().1;
    let checks: Vec<(String, bool)> = vec![
        (
            format!("3C+0F is the best configuration ({:.2} ms)", med(3, 0)),
            configs.iter().all(|&(c, f)| med(3, 0) <= med(c, f) * 1.05),
        ),
        (
            format!(
                "adding a core beats adding an accelerator: 2C+1F {:.2} < 1C+2F {:.2}",
                med(2, 1),
                med(1, 2)
            ),
            med(2, 1) < med(1, 2),
        ),
        (
            format!(
                "2C+2F ~ 2C+1F (shared-core accel managers): {:.2} vs {:.2}",
                med(2, 2),
                med(2, 1)
            ),
            (med(2, 2) - med(2, 1)).abs() / med(2, 1) < 0.25,
        ),
        (
            format!(
                "more PEs help: 1C+0F {:.2} > 2C+0F {:.2} > 3C+0F {:.2}",
                med(1, 0),
                med(2, 0),
                med(3, 0)
            ),
            med(1, 0) > med(2, 0) && med(2, 0) > med(3, 0),
        ),
    ];
    let mut all_ok = true;
    for (desc, ok) in checks {
        println!("  [{}] {desc}", if ok { "ok" } else { "MISMATCH" });
        all_ok &= ok;
    }
    report.set("shape_checks_ok", serde_json::to_value(&all_ok));
    if let Ok(path) = report.write() {
        println!();
        println!("summary merged into {}", path.display());
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
