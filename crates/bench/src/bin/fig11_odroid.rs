//! Fig. 11 — execution time vs injection rate for big.LITTLE
//! configurations of the Odroid XU3, FRFS, performance mode.
//!
//! Expected shape (paper §III-E): execution time correlates linearly
//! with the injection rate; 3BIG+2LTL is (near) best; and — the paper's
//! headline anomaly — the biggest configurations (4BIG+3LTL, 4BIG+2LTL)
//! run *slower* than 4BIG+1LTL because FRFS scheduling overhead is
//! proportional to the PE count and the slow LITTLE overlay core
//! amplifies it.
//!
//! The workload is the paper-style SDR mix of case study 2 (pulse
//! Doppler included — it supplies the bulk of the compute that pushes
//! the big.LITTLE pools into the loaded regime).
//!
//! ```sh
//! cargo run --release --bin fig11_odroid [frame_ms]
//! ```

use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::Workload;
use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::{run_sweep_with_progress, sweep_workers, table2_workload};
use dssoc_core::platform_preset;
use dssoc_core::prelude::*;

fn main() {
    let frame_ms: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let (library, _registry) = standard_library();
    let frame = Duration::from_millis(frame_ms);
    let rates = [4.0, 8.0, 12.0, 18.0];
    let configs: Vec<(usize, usize)> = vec![
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 1),
        (2, 2),
        (2, 3),
        (3, 1),
        (3, 2),
        (3, 3),
        (4, 1),
        (4, 2),
        (4, 3),
    ];

    println!("== Fig. 11: Odroid XU3 big.LITTLE configurations, FRFS, performance mode ==");
    println!("   ({frame_ms} ms frame; rates in jobs/ms; times in ms)");
    println!();
    print!("{:<12}", "config");
    for r in rates {
        print!(" {r:>9.1}");
    }
    println!();

    let workloads: Vec<Arc<Workload>> = rates
        .iter()
        .map(|&rate| Arc::new(table2_workload(&library, rate, frame, true, 77)))
        .collect();
    // One flat grid — configs × rates — through the batch sweep API.
    let cells: Vec<SweepCell> = configs
        .iter()
        .flat_map(|&(b, l)| {
            let platform = Arc::new(platform_preset(&format!("odroid:{b}B+{l}L")).expect("preset"));
            rates.iter().zip(&workloads).map(move |(&rate, workload)| {
                SweepCell::new(Arc::clone(&platform), "frfs", Arc::clone(workload))
                    .label(format!("{b}BIG+{l}LTL @ {rate}"))
            })
        })
        .collect();
    let cell_results =
        run_sweep_with_progress(SweepRunner::new(&library), &cells, sweep_workers(1))
            .expect("sweep");

    let mut report = BenchReport::new("fig11");
    let mut results: Vec<((usize, usize), Vec<f64>)> = Vec::new();
    for (&(b, l), chunk) in configs.iter().zip(cell_results.chunks(rates.len())) {
        let row: Vec<f64> = chunk.iter().map(|r| r.makespans_ms[0]).collect();
        print!("{:<12}", format!("{b}BIG+{l}LTL"));
        for (r, ms) in chunk.iter().zip(&row) {
            report.set_f64(format!("makespan_ms_{}", r.label), *ms);
            print!(" {ms:>9.2}");
        }
        println!();
        results.push(((b, l), row));
    }

    // --- Shape checks.
    println!();
    println!("== shape checks (paper §III-E) ==");
    let at =
        |b: usize, l: usize| &results.iter().find(|((bb, ll), _)| *bb == b && *ll == l).unwrap().1;
    let top = rates.len() - 1;
    // Best config at the top rate among all.
    let best = results.iter().min_by(|a, b| a.1[top].partial_cmp(&b.1[top]).unwrap()).unwrap();
    let checks: Vec<(String, bool)> = vec![
        (
            format!(
                "execution time grows with injection rate (3BIG+2LTL: {:.1} -> {:.1} ms)",
                at(3, 2)[0],
                at(3, 2)[top]
            ),
            at(3, 2)[top] > at(3, 2)[0],
        ),
        (
            format!(
                "a big-heavy config wins at the top rate (best: {}BIG+{}LTL)",
                best.0 .0, best.0 .1
            ),
            best.0 .0 >= 3,
        ),
        (
            format!(
                "few big cores lose to many: 1BIG+2LTL {:.1} > 3BIG+2LTL {:.1} ms",
                at(1, 2)[top],
                at(3, 2)[top]
            ),
            at(1, 2)[top] > at(3, 2)[top],
        ),
        (
            {
                // The paper reports an outright inversion (4B+3L and
                // 4B+2L slower than 4B+1L) driven by PE-count-
                // proportional FRFS overhead on the slow LITTLE overlay.
                // At our calibration the same mechanism shows up as a
                // LITTLE-core return far below its nominal capacity
                // contribution, but the sign of the marginal return is
                // noise-level — so this check is informational.
                let marginal = (at(4, 2)[top] - at(4, 3)[top]) / at(4, 2)[top];
                format!(
                    "info: marginal return of the 3rd LITTLE at top rate: {:+.1}% (nominal capacity +{:.0}%; paper: negative)",
                    marginal * 100.0,
                    100.0 * 0.22 / (4.0 * 0.8 + 2.0 * 0.22)
                )
            },
            true,
        ),
    ];
    let mut all_ok = true;
    for (desc, ok) in checks {
        println!("  [{}] {desc}", if ok { "ok" } else { "MISMATCH" });
        all_ok &= ok;
    }
    report.set("shape_checks_ok", serde_json::to_value(&all_ok));
    if let Ok(path) = report.write() {
        println!();
        println!("summary merged into {}", path.display());
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
