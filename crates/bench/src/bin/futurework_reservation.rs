//! Future work, implemented: PE-level reservation queues.
//!
//! The paper closes with "we will expand our framework to support
//! abstractions like PE-level work queues to enable lower-overhead task
//! dispatch and richer scheduling algorithms". This harness quantifies
//! that claim: the Fig. 10 scheduler sweep at a high injection rate,
//! with reservation depth 0 (the paper's evaluated system) vs depth 4.
//!
//! Expected: queues shrink everyone's makespan, and they help the
//! expensive policies (EFT) the most, because dispatch no longer waits
//! for a scheduler invocation on every completion — "richer scheduling
//! algorithms" become affordable.
//!
//! ```sh
//! cargo run --release --bin futurework_reservation [rate] [frame_ms]
//! ```

use std::sync::Arc;
use std::time::Duration;

use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::table2_workload;
use dssoc_core::engine::{Emulation, EmulationConfig, OverheadMode, TimingMode};
use dssoc_core::job::CostSpec;
use dssoc_core::platform_preset;
use dssoc_core::sched::by_name;

fn main() {
    let rate: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4.57);
    let frame_ms: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(60);
    let (library, _registry) = standard_library();
    let platform = Arc::new(platform_preset("zcu102:3C+2F").expect("preset"));
    let workload = table2_workload(&library, rate, Duration::from_millis(frame_ms), true, 42);

    println!("== future work: PE-level reservation queues on 3C+2F ==");
    println!("   rate {rate} jobs/ms over {frame_ms} ms ({} arrivals)", workload.len());
    println!();
    println!("{:<10} {:>16} {:>16} {:>10}", "policy", "depth 0 (ms)", "depth 4 (ms)", "gain");

    let mut rows = Vec::new();
    for name in ["frfs", "met", "eft"] {
        let mut res = Vec::new();
        for depth in [0usize, 4] {
            let cfg = EmulationConfig {
                timing: TimingMode::Modeled,
                overhead: OverheadMode::Measured,
                cost: CostSpec::default(),
                reservation_depth: depth,
                trace: None,
                faults: None,
                metrics: None,
            };
            let mut emu = Emulation::with_config(Arc::clone(&platform), cfg).expect("platform");
            let mut sched = by_name(name).expect("policy");
            let stats = emu.run(sched.as_mut(), &workload, &library).expect("run");
            res.push(stats.makespan.as_secs_f64() * 1e3);
        }
        println!(
            "{:<10} {:>16.2} {:>16.2} {:>9.2}x",
            name.to_uppercase(),
            res[0],
            res[1],
            res[0] / res[1]
        );
        rows.push((name, res[0], res[1]));
    }

    let mut report = BenchReport::new("futurework");
    for (name, without, with) in &rows {
        report.set_f64(format!("{name}_depth0_ms"), *without);
        report.set_f64(format!("{name}_depth4_ms"), *with);
    }

    println!();
    println!("== shape checks ==");
    let mut all_ok = true;
    for (name, without, with) in &rows {
        let ok = with <= &(without * 1.05);
        println!(
            "  [{}] {} does not get worse with queues ({:.1} -> {:.1} ms)",
            if ok { "ok" } else { "MISMATCH" },
            name.to_uppercase(),
            without,
            with
        );
        all_ok &= ok;
    }
    let eft_gain = rows[2].1 / rows[2].2;
    let frfs_gain = rows[0].1 / rows[0].2;
    let ok = eft_gain > frfs_gain;
    println!(
        "  [{}] queues help the expensive policy most: EFT {:.2}x vs FRFS {:.2}x",
        if ok { "ok" } else { "MISMATCH" },
        eft_gain,
        frfs_gain
    );
    all_ok &= ok;
    report.set("shape_checks_ok", serde_json::to_value(&all_ok));
    if let Ok(path) = report.write() {
        println!();
        println!("summary merged into {}", path.display());
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
