//! Reliability sweep — makespan and recovery counters vs transient
//! fault rate, for FRFS / MET / EFT on the 3C+2F configuration with a
//! deterministic cost table (modeled timing, seeded fault plan).
//!
//! Expected shape: at rate 0 nothing is injected; as the rate grows the
//! engines absorb faults through bounded retries (retries grow
//! monotonically from zero), and at moderate rates the recovery policy
//! still completes every application instance — graceful degradation,
//! not collapse.
//!
//! ```sh
//! cargo run --release --bin fig_reliability [instances_per_app]
//! ```

use std::sync::Arc;
use std::time::Duration;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::{run_sweep_with_progress, sweep_workers};
use dssoc_core::fault::{FaultSpec, RateFault, RetryPolicy};
use dssoc_core::job::CostSpec;
use dssoc_core::platform_preset;
use dssoc_core::prelude::*;
use dssoc_core::sweep::SweepRunner;
use dssoc_core::OverheadMode;
use dssoc_core::TimingMode;
use dssoc_platform::cost::CostTable;
use dssoc_platform::pe::PlatformConfig;

const APPS: [&str; 4] = ["pulse_doppler", "range_detection", "wifi_tx", "wifi_rx"];

/// Deterministic costs for every `(runfunc, class)` pair the reference
/// apps can hit on `platform` (mean_exec when present, synthetic
/// otherwise) — modeled timing keeps the schedule, and therefore the
/// seeded fault draws, identical across invocations of this binary.
fn full_cost_table(platform: &PlatformConfig) -> CostTable {
    let (library, _registry) = standard_library();
    let mut table = CostTable::new();
    for app in APPS {
        let spec = library.get(app).expect("reference app");
        for node in &spec.nodes {
            for pe in &platform.pes {
                if let Some(p) = node.platform(&pe.platform_key) {
                    let d = p
                        .mean_exec
                        .unwrap_or_else(|| Duration::from_micros(50 + 10 * node.index as u64));
                    table.set(p.runfunc.clone(), pe.class_name(), d);
                }
            }
        }
    }
    table
}

fn spec_for(rate: f64) -> Option<Arc<FaultSpec>> {
    if rate == 0.0 {
        return None;
    }
    Some(Arc::new(FaultSpec {
        seed: 42,
        transient: vec![RateFault { kernel: None, pe: None, probability: rate }],
        // A deep quarantine threshold keeps every PE alive: the sweep
        // measures the retry path, not PE attrition.
        retry: RetryPolicy { max_retries: 3, backoff_us: 50.0, quarantine_after: 1_000 },
        ..FaultSpec::default()
    }))
}

fn main() {
    let instances: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let (library, _registry) = standard_library();
    let platform = Arc::new(platform_preset("zcu102:3C+2F").expect("preset"));
    let workload = Arc::new(
        WorkloadSpec::validation(APPS.map(|a| (a, instances))).generate(&library).unwrap(),
    );
    let rates = [0.0, 0.05, 0.10, 0.20];
    let schedulers = ["frfs", "met", "eft"];

    println!("== reliability: transient fault rate x scheduler on 3C+2F ({instances} inst/app) ==");
    println!();
    println!(
        "{:>5} {:>6} | {:>12} {:>8} {:>8} {:>8} {:>8}",
        "rate", "sched", "makespan(ms)", "faults", "retries", "aborted", "done"
    );

    let cells: Vec<SweepCell> = rates
        .iter()
        .flat_map(|&rate| {
            let platform = &platform;
            let workload = &workload;
            schedulers.iter().map(move |&name| {
                let mut cell = SweepCell::new(Arc::clone(platform), name, Arc::clone(workload))
                    .label(format!("{rate:.2}/{name}"));
                if let Some(spec) = spec_for(rate) {
                    cell = cell.faults(spec);
                }
                cell
            })
        })
        .collect();
    let config = EmulationConfig {
        timing: TimingMode::Modeled,
        overhead: OverheadMode::None,
        cost: CostSpec::table(full_cost_table(&platform)),
        reservation_depth: 0,
        trace: None,
        faults: None,
        metrics: None,
    };
    let results = run_sweep_with_progress(
        SweepRunner::with_config(&library, config),
        &cells,
        sweep_workers(1),
    )
    .expect("sweep");

    let mut report = BenchReport::new("fig_reliability");
    let total_apps = workload.len();
    // rows[rate_idx][sched_idx] = (makespan_ms, reliability)
    let mut rows: Vec<Vec<(f64, ReliabilityView)>> = Vec::new();
    for (&rate, chunk) in rates.iter().zip(results.chunks(schedulers.len())) {
        let mut row = Vec::new();
        for r in chunk {
            let ms = r.stats.makespan.as_secs_f64() * 1e3;
            let rel = &r.stats.reliability;
            println!(
                "{:>5.2} {:>6} | {:>12.2} {:>8} {:>8} {:>8} {:>5}/{}",
                rate,
                r.label.split('/').nth(1).unwrap_or(&r.label),
                ms,
                rel.faults_injected,
                rel.retries,
                rel.apps_aborted,
                r.stats.completed_apps(),
                total_apps,
            );
            report.set_f64(format!("makespan_ms_{}", r.label), ms);
            report.set_f64(format!("faults_{}", r.label), rel.faults_injected as f64);
            report.set_f64(format!("retries_{}", r.label), rel.retries as f64);
            report.set_f64(format!("aborted_{}", r.label), rel.apps_aborted as f64);
            row.push((
                ms,
                ReliabilityView {
                    faults: rel.faults_injected,
                    retries: rel.retries,
                    aborted: rel.apps_aborted,
                    completed: r.stats.completed_apps(),
                },
            ));
        }
        rows.push(row);
    }

    println!();
    println!("== shape checks ==");
    let baseline = &rows[0];
    let top = &rows[rows.len() - 1];
    let low = &rows[1]; // the smallest non-zero rate
    let mut checks: Vec<(String, bool)> = vec![
        (
            "rate 0 injects nothing (all schedulers)".to_string(),
            baseline.iter().all(|(_, r)| r.faults == 0 && r.retries == 0 && r.aborted == 0),
        ),
        (
            format!(
                "faults grow with the rate: {} -> {} (frfs)",
                rows[1][0].1.faults, top[0].1.faults
            ),
            (1..rows.len()).all(|i| rows[i][0].1.faults > rows[i - 1][0].1.faults),
        ),
        (
            format!("retries follow: 0 -> {} (frfs)", top[0].1.retries),
            top[0].1.retries > baseline[0].1.retries,
        ),
        (
            format!(
                "recovery costs makespan at rate {:.2}: {:.2} -> {:.2} ms (frfs)",
                rates[1], baseline[0].0, low[0].0
            ),
            low[0].0 > baseline[0].0,
        ),
    ];
    for (si, &name) in schedulers.iter().enumerate() {
        checks.push((
            format!("{name} absorbs rate {:.2} completely (0 aborted)", rates[1]),
            low[si].1.completed == total_apps && low[si].1.aborted == 0,
        ));
        // Bounded retries mean bounded attrition at extreme rates: every
        // instance is accounted for (completed or aborted, never lost)
        // and at least 3/4 still finish at the top rate.
        checks.push((
            format!(
                "{name} degrades gracefully at the top rate: {}/{} done, {} aborted",
                top[si].1.completed, total_apps, top[si].1.aborted
            ),
            rows.iter().all(|row| row[si].1.completed + row[si].1.aborted as usize == total_apps)
                && top[si].1.completed * 4 >= total_apps * 3,
        ));
    }
    let mut all_ok = true;
    for (desc, ok) in checks {
        println!("  [{}] {desc}", if ok { "ok" } else { "MISMATCH" });
        all_ok &= ok;
    }
    report.set("shape_checks_ok", serde_json::to_value(&all_ok));
    if let Ok(path) = report.write() {
        println!();
        println!("summary merged into {}", path.display());
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}

struct ReliabilityView {
    faults: u64,
    retries: u64,
    aborted: u64,
    completed: usize,
}
