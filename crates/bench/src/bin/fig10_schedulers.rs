//! Fig. 10 — workload execution time (a) and average scheduling
//! overhead (b) vs injection rate, for EFT / MET / FRFS on the 3C+2F
//! configuration in performance mode.
//!
//! Expected shape (paper §III-D): FRFS wins on execution time with a
//! near-constant overhead; MET and EFT pay per-ready-task computation on
//! every completion, so their overhead grows with the injection rate and
//! their execution time blows up at overload (the paper's FRFS overhead
//! is ~2.5 us flat; EFT reaches milliseconds per invocation).
//!
//! ```sh
//! cargo run --release --bin fig10_schedulers [frame_ms]
//! ```

use std::sync::Arc;
use std::time::Duration;

use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::{run_sweep_with_progress, sweep_workers, table2_workload};
use dssoc_core::platform_preset;
use dssoc_core::prelude::*;

fn main() {
    let frame_ms: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let (library, _registry) = standard_library();
    let platform = Arc::new(platform_preset("zcu102:3C+2F").expect("preset"));
    let frame = Duration::from_millis(frame_ms);
    // The paper's Table II rates.
    let rates = [1.71, 2.28, 3.42, 4.57, 6.92];

    println!("== Fig. 10: schedulers on 3C+2F, performance mode ({frame_ms} ms frame) ==");
    println!();
    println!(
        "{:>6} | {:>12} {:>12} {:>12} | {:>10} {:>10} {:>10}",
        "rate", "EFT (ms)", "MET (ms)", "FRFS (ms)", "EFT ovh", "MET ovh", "FRFS ovh"
    );

    // One flat grid — rates × schedulers — through the batch sweep API.
    let schedulers = ["eft", "met", "frfs"];
    let cells: Vec<SweepCell> = rates
        .iter()
        .flat_map(|&rate| {
            let workload = Arc::new(table2_workload(&library, rate, frame, true, 42));
            let platform = &platform;
            schedulers.iter().map(move |&name| {
                SweepCell::new(Arc::clone(platform), name, Arc::clone(&workload))
                    .label(format!("{rate:.2}/{name}"))
            })
        })
        .collect();
    let results = run_sweep_with_progress(SweepRunner::new(&library), &cells, sweep_workers(1))
        .expect("sweep");

    let mut report = BenchReport::new("fig10");
    let mut rows: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
    for (&rate, chunk) in rates.iter().zip(results.chunks(schedulers.len())) {
        let row: Vec<(f64, f64)> = chunk
            .iter()
            .map(|r| {
                (
                    r.stats.makespan.as_secs_f64() * 1e3,
                    r.stats.avg_sched_overhead().as_secs_f64() * 1e6,
                )
            })
            .collect();
        for (r, &(ms, ovh_us)) in chunk.iter().zip(&row) {
            report.set_f64(format!("makespan_ms_{}", r.label), ms);
            report.set_f64(format!("sched_overhead_us_{}", r.label), ovh_us);
        }
        println!(
            "{:>6.2} | {:>12.2} {:>12.2} {:>12.2} | {:>8.2}us {:>8.2}us {:>8.2}us",
            rate, row[0].0, row[1].0, row[2].0, row[0].1, row[1].1, row[2].1
        );
        rows.push((rate, row));
    }

    // --- Shape checks (paper Fig. 10).
    println!();
    println!("== shape checks ==");
    let last = &rows[rows.len() - 1].1;
    let first = &rows[0].1;
    let checks: Vec<(String, bool)> = vec![
        (
            format!(
                "FRFS beats MET beats EFT at the top rate: {:.1} < {:.1} < {:.1} ms",
                last[2].0, last[1].0, last[0].0
            ),
            last[2].0 < last[1].0 && last[1].0 < last[0].0,
        ),
        (
            format!(
                "FRFS overhead ~flat: {:.2} -> {:.2} us (EFT grows {:.1}x, FRFS {:.1}x)",
                first[2].1,
                last[2].1,
                last[0].1 / first[0].1,
                last[2].1 / first[2].1
            ),
            // The paper's claim is relative: FRFS stays (near) constant
            // while the sophisticated policies' overhead scales with the
            // ready-queue length.
            last[2].1 < first[2].1 * 5.0
                && (last[0].1 / first[0].1) > 1.5 * (last[2].1 / first[2].1),
        ),
        (
            format!("MET overhead grows with rate: {:.2} -> {:.2} us", first[1].1, last[1].1),
            last[1].1 > first[1].1 * 2.0,
        ),
        (
            format!("EFT overhead grows with rate: {:.2} -> {:.2} us", first[0].1, last[0].1),
            last[0].1 > first[0].1 * 2.0,
        ),
        (
            format!(
                "EFT overhead exceeds MET exceeds FRFS at the top rate: {:.1} > {:.1} > {:.1} us",
                last[0].1, last[1].1, last[2].1
            ),
            last[0].1 > last[1].1 && last[1].1 > last[2].1,
        ),
    ];
    let mut all_ok = true;
    for (desc, ok) in checks {
        println!("  [{}] {desc}", if ok { "ok" } else { "MISMATCH" });
        all_ok &= ok;
    }
    report.set("shape_checks_ok", serde_json::to_value(&all_ok));
    if let Ok(path) = report.write() {
        println!();
        println!("summary merged into {}", path.display());
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
