//! Table I — application execution time and task count on the paper's
//! 3-core + 2-FFT configuration under FRFS.
//!
//! ```text
//! Application       Execution Time (ms)   Task Count     (paper)
//! Range Detection   0.32                  6
//! Pulse Doppler     5.60                  770
//! WiFi TX           0.13                  7
//! WiFi RX           2.22                  9
//! ```
//!
//! ```sh
//! cargo run --release --bin table1_app_times
//! ```

use std::sync::Arc;

use dssoc_appmodel::WorkloadSpec;
use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::{run_sweep_with_progress, summarize, sweep_workers};
use dssoc_core::platform_preset;
use dssoc_core::prelude::*;

fn main() {
    let (library, _registry) = standard_library();
    let platform = Arc::new(platform_preset("zcu102:3C+2F").expect("preset"));
    let iterations = 10;

    println!(
        "== Table I: standalone application execution on 3C+2F, FRFS ({iterations} iterations) =="
    );
    println!();
    println!(
        "{:<18} {:>18} {:>12}   {:>10}",
        "Application", "Exec Time (ms)", "Task Count", "paper (ms)"
    );

    let paper =
        [("range_detection", 0.32), ("pulse_doppler", 5.60), ("wifi_tx", 0.13), ("wifi_rx", 2.22)];
    let cells: Vec<SweepCell> = paper
        .iter()
        .map(|&(app, _)| {
            let workload = Arc::new(
                WorkloadSpec::validation([(app, 1usize)]).generate(&library).expect("workload"),
            );
            SweepCell::new(Arc::clone(&platform), "frfs", workload)
                .label(app)
                .iterations(iterations)
                .warmup(iterations > 1)
        })
        .collect();
    let results = run_sweep_with_progress(SweepRunner::new(&library), &cells, sweep_workers(1))
        .expect("sweep");

    let mut report = BenchReport::new("table1");
    for ((app, paper_ms), result) in paper.iter().zip(&results) {
        let s = summarize(&result.makespans_ms);
        report.set_f64(format!("median_ms_{app}"), s.median);
        report.set(format!("tasks_{app}"), serde_json::to_value(&result.stats.tasks.len()));
        println!(
            "{:<18} {:>18.3} {:>12}   {:>10.2}",
            app,
            s.median,
            result.stats.tasks.len(),
            paper_ms
        );
    }
    println!();
    println!("task counts must match the paper exactly; times are relative to this host.");
    if let Ok(path) = report.write() {
        println!("summary merged into {}", path.display());
    }
}
