//! Table II — application instance counts per injection rate.
//!
//! The paper's performance-mode traces over a 100 ms frame:
//!
//! ```text
//! rate (jobs/ms)   PD    RD    TX   RX      (paper)
//! 1.71              8   123    20   20
//! 2.28             10   164    27   27
//! 3.42             15   245    41   41
//! 4.57             18   329    55   55
//! 6.92             32   495    82   83
//! ```
//!
//! ```sh
//! cargo run --release --bin table2_workload
//! ```

use std::time::Duration;

use dssoc_apps::standard_library;
use dssoc_bench::report::BenchReport;
use dssoc_bench::table2_workload;

fn main() {
    let (library, _registry) = standard_library();
    let frame = Duration::from_millis(100);

    println!("== Table II: instance counts per injection rate (100 ms frame) ==");
    println!();
    println!(
        "{:>6} {:>8} | {:>5} {:>5} {:>5} {:>5} | paper: PD RD TX RX",
        "target", "actual", "PD", "RD", "TX", "RX"
    );
    let paper = [
        (1.71, [8, 123, 20, 20]),
        (2.28, [10, 164, 27, 27]),
        (3.42, [15, 245, 41, 41]),
        (4.57, [18, 329, 55, 55]),
        (6.92, [32, 495, 82, 83]),
    ];
    let mut report = BenchReport::new("table2");
    for (rate, paper_counts) in paper {
        let wl = table2_workload(&library, rate, frame, true, 2020);
        let counts = wl.counts_by_app();
        let get = |k: &str| counts.get(k).copied().unwrap_or(0);
        report.set_f64(format!("actual_rate_{rate:.2}"), wl.injection_rate_per_ms().unwrap_or(0.0));
        report.set(format!("instances_{rate:.2}"), serde_json::to_value(&wl.len()));
        println!(
            "{:>6.2} {:>8.2} | {:>5} {:>5} {:>5} {:>5} | paper: {:>3} {:>3} {:>3} {:>3}",
            rate,
            wl.injection_rate_per_ms().unwrap_or(0.0),
            get("pulse_doppler"),
            get("range_detection"),
            get("wifi_tx"),
            get("wifi_rx"),
            paper_counts[0],
            paper_counts[1],
            paper_counts[2],
            paper_counts[3],
        );
    }
    println!();
    println!("counts track the paper's proportions (PD sparse, RD dense, WiFi mid).");
    if let Ok(path) = report.write() {
        println!("summary merged into {}", path.display());
    }
}
