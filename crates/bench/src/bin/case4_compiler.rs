//! Case study 4 — automatic application conversion.
//!
//! Compiles the monolithic, unlabeled range-detection program three
//! ways, runs each through the emulator on the paper's 3-core + 1-FFT
//! configuration, and measures the per-kernel speedup from hash-based
//! recognition:
//!
//! * **naive** — the recognized DFT/IDFT loops run as compiled naive
//!   `O(n^2)` code (the paper's baseline: loop DFTs in compiled C);
//! * **optimized** — runfuncs redirected to the `O(n log n)` FFT (the
//!   paper's FFTW substitution, ~102x);
//! * **accelerator** — `fft` platform entries added, routing the
//!   transform through the DMA-modeled device (paper ~94x).
//!
//! ```sh
//! cargo run --release --bin case4_compiler [n] [reps]
//! ```

use dssoc_appmodel::{AppLibrary, WorkloadSpec};
use dssoc_bench::report::BenchReport;
use dssoc_compiler::{compile, programs, CompileOptions};
use dssoc_core::prelude::*;
use dssoc_platform::presets::zcu102;

fn read_scalar(mem: &dssoc_appmodel::memory::AppMemory, name: &str) -> f64 {
    f64::from_le_bytes(mem.read_bytes(name).unwrap()[..8].try_into().unwrap())
}

/// Median of the summed modeled DFT/IDFT node times over `reps` runs.
fn fft_node_time_ms(
    opts: &CompileOptions,
    n: usize,
    delay: usize,
    ffts: usize,
    reps: usize,
) -> (f64, usize) {
    let program = programs::monolithic_range_detection(n, delay);
    let app = compile(&program, opts).expect("compiles");
    let mut library = AppLibrary::new();
    library.register_json(&app.json, &app.registry).expect("validates");
    let wl = WorkloadSpec::validation([(opts.app_name.clone(), 1usize)])
        .generate(&library)
        .expect("workload");
    let mut samples = Vec::new();
    let mut recognized = 0usize;
    for _ in 0..reps {
        let mut emu = Emulation::new(zcu102(3, ffts)).expect("platform");
        let stats = emu.run(&mut MetScheduler::new(), &wl, &library).expect("run");
        let mem = stats.instance_memory(stats.apps[0].instance).unwrap();
        assert_eq!(read_scalar(mem, "lag"), delay as f64, "output must stay correct");
        let t: f64 = stats
            .tasks
            .iter()
            .filter(|t| ["kernel_1", "kernel_2", "kernel_4"].contains(&t.node.as_str()))
            .map(|t| t.modeled.as_secs_f64())
            .sum();
        samples.push(t * 1e3);
        recognized = app.report.recognized_count();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[samples.len() / 2], recognized)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let reps: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let delay = 100.min(n - 1);
    println!("== Case study 4: automatic conversion of monolithic range detection (n = {n}, {reps} reps) ==");
    println!();

    let (t_naive, rec) = fft_node_time_ms(
        &CompileOptions {
            app_name: "rd_naive".into(),
            naive_native: true,
            ..CompileOptions::default()
        },
        n,
        delay,
        0,
        reps,
    );
    let (t_opt, _) = fft_node_time_ms(
        &CompileOptions {
            app_name: "rd_opt".into(),
            substitute_optimized: true,
            ..CompileOptions::default()
        },
        n,
        delay,
        0,
        reps,
    );
    let (t_accel, _) = fft_node_time_ms(
        &CompileOptions {
            app_name: "rd_accel".into(),
            add_accelerator_platforms: true,
            naive_native: true,
            ..CompileOptions::default()
        },
        n,
        delay,
        1,
        reps,
    );

    println!("kernels recognized by hash:              {rec}  (paper: 2 DFT + 1 IFFT)");
    println!();
    println!("DFT/IDFT node time, naive compiled loops : {t_naive:>10.3} ms");
    println!("DFT/IDFT node time, optimized FFT (CPU)  : {t_opt:>10.3} ms");
    println!("DFT/IDFT node time, FFT accelerator      : {t_accel:>10.3} ms");
    println!();
    let cpu_speedup = t_naive / t_opt;
    let accel_speedup = t_naive / t_accel;
    println!("speedup, optimized CPU substitution      : {cpu_speedup:>8.1}x  (paper: ~102x)");
    println!("speedup, accelerator substitution        : {accel_speedup:>8.1}x  (paper: ~94x)");

    println!();
    println!("== shape checks ==");
    let checks: Vec<(String, bool)> = vec![
        ("three kernels recognized".into(), rec == 3),
        (format!("CPU substitution speedup is large ({cpu_speedup:.0}x > 30x)"), cpu_speedup > 30.0),
        (
            format!("accelerator substitution speedup is large ({accel_speedup:.0}x > 30x)"),
            accel_speedup > 30.0,
        ),
        (
            format!(
                "CPU FFT beats the accelerator (DMA overhead), as in the paper: {cpu_speedup:.0}x > {accel_speedup:.0}x"
            ),
            cpu_speedup > accel_speedup,
        ),
    ];
    let mut all_ok = true;
    for (desc, ok) in checks {
        println!("  [{}] {desc}", if ok { "ok" } else { "MISMATCH" });
        all_ok &= ok;
    }
    let mut report = BenchReport::new("case4");
    report
        .set_f64("naive_ms", t_naive)
        .set_f64("optimized_ms", t_opt)
        .set_f64("accelerator_ms", t_accel)
        .set_f64("cpu_speedup", cpu_speedup)
        .set_f64("accel_speedup", accel_speedup)
        .set("shape_checks_ok", serde_json::to_value(&all_ok));
    if let Ok(path) = report.write() {
        println!();
        println!("summary merged into {}", path.display());
    }
    std::process::exit(if all_ok { 0 } else { 1 });
}
