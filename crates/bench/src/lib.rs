//! # dssoc-bench — the paper-reproduction benchmark harness
//!
//! One binary per table / figure of the paper's evaluation (§III), plus
//! Criterion microbenches. The binaries print the same rows/series the
//! paper reports; `EXPERIMENTS.md` records paper-vs-measured for each.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_app_times` | Table I — standalone app exec time & task count |
//! | `table2_workload` | Table II — instance counts per injection rate |
//! | `fig9_validation` | Fig. 9 — exec time + utilization across configs |
//! | `fig10_schedulers` | Fig. 10 — exec time + overhead vs injection rate |
//! | `fig11_odroid` | Fig. 11 — big.LITTLE configs vs injection rate |
//! | `case4_compiler` | Case study 4 — auto-conversion speedups |

pub mod report;

use std::time::Duration;

use dssoc_appmodel::{AppLibrary, InjectionParams, Workload, WorkloadSpec};

/// Summary statistics over repeated runs (for the paper's box plots).
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// Computes box-plot statistics for a sample (panics on empty input).
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "cannot summarize an empty sample");
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let q = |f: f64| -> f64 {
        let pos = f * (s.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            s[lo]
        } else {
            s[lo] + (s[hi] - s[lo]) * (pos - lo as f64)
        }
    };
    Summary {
        min: s[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: s[s.len() - 1],
        mean: s.iter().sum::<f64>() / s.len() as f64,
    }
}

/// The paper's Table II injection-rate workloads: for a target rate in
/// jobs/ms over a 100 ms frame, each application is injected
/// periodically with probability one, with per-app instance counts in
/// the paper's proportions (pulse Doppler sparse — long DAG — and range
/// detection / WiFi dense).
///
/// `include_pd` controls whether pulse Doppler participates (its 770
/// tasks per instance dominate runtime; Fig. 11's Odroid sweep uses the
/// lighter mix).
pub fn table2_workload(
    library: &AppLibrary,
    rate_jobs_per_ms: f64,
    frame: Duration,
    include_pd: bool,
    seed: u64,
) -> Workload {
    // Paper Table II proportions at 1.71 jobs/ms: PD 8, RD 123, TX 20,
    // RX 20 over 100 ms. Scale periods inversely with the target rate.
    let total_ref = if include_pd { 171.0 } else { 163.0 };
    let scale = rate_jobs_per_ms * 100.0 / total_ref; // instances multiplier
    let frame_ms = frame.as_secs_f64() * 1e3;
    let period = |count_ref: f64| -> Duration {
        let count = (count_ref * scale * frame_ms / 100.0).max(1.0);
        Duration::from_secs_f64(frame.as_secs_f64() / count)
    };
    let mut injections = vec![
        InjectionParams { app: "range_detection".into(), period: period(123.0), probability: 1.0 },
        InjectionParams { app: "wifi_tx".into(), period: period(20.0), probability: 1.0 },
        InjectionParams { app: "wifi_rx".into(), period: period(20.0), probability: 1.0 },
    ];
    if include_pd {
        injections.push(InjectionParams {
            app: "pulse_doppler".into(),
            period: period(8.0),
            probability: 1.0,
        });
    }
    WorkloadSpec::performance(injections, frame, seed)
        .generate(library)
        .expect("table2 workload generates")
}

/// Environment variable selecting the sweep worker count for the bench
/// bins (see [`sweep_workers`]).
pub const SWEEP_WORKERS_ENV: &str = "SWEEP_WORKERS";

/// Worker count for a bin's `run_batch_parallel` call: `$SWEEP_WORKERS`
/// when set, otherwise `default`.
///
/// The threaded-engine bins default to 1 (sequential): their cells
/// measure *host* time (measured scheduling overhead, measured-cost
/// calibration), and concurrent cells would contend for cores and
/// inflate exactly the numbers the figures report. Grids over the DES —
/// pure virtual-time compute — default to all cores. `SWEEP_WORKERS=N`
/// overrides either way, e.g. for CI smoke runs where only the shape of
/// the output matters.
pub fn sweep_workers(default: usize) -> usize {
    std::env::var(SWEEP_WORKERS_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// Runs a sweep grid through `run_batch_parallel` with a live progress
/// line on stderr: cells done/running/failed plus an ETA extrapolated
/// from completed-cell wall times. Every figure harness funnels its
/// grid through this, so long sweeps are observable instead of silent.
/// The line redraws in place and is terminated before results print.
pub fn run_sweep_with_progress(
    mut runner: dssoc_core::sweep::SweepRunner<'_>,
    cells: &[dssoc_core::sweep::SweepCell],
    workers: usize,
) -> Result<Vec<dssoc_core::sweep::CellResult>, dssoc_core::EmuError> {
    let progress = dssoc_core::sweep::SweepProgress::new();
    runner.set_progress(progress.clone());
    let watcher = progress.watch_stderr(Duration::from_millis(250));
    let results = runner.run_batch_parallel(cells, workers);
    drop(watcher);
    results
}

/// Pretty-prints a labeled summary row.
pub fn print_summary_row(label: &str, s: &Summary, unit: &str) {
    println!(
        "{label:<12} min {:>9.3} | q1 {:>9.3} | med {:>9.3} | q3 {:>9.3} | max {:>9.3} {unit}",
        s.min, s.q1, s.median, s.q3, s.max
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dssoc_apps::standard_library;

    #[test]
    fn summarize_quartiles() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        let one = summarize(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.q1, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summarize_rejects_empty() {
        summarize(&[]);
    }

    #[test]
    fn table2_rates_scale_counts() {
        let (lib, _) = standard_library();
        let frame = Duration::from_millis(100);
        let low = table2_workload(&lib, 1.71, frame, true, 0);
        let high = table2_workload(&lib, 6.92, frame, true, 0);
        let low_rate = low.injection_rate_per_ms().unwrap();
        let high_rate = high.injection_rate_per_ms().unwrap();
        assert!((low_rate - 1.71).abs() / 1.71 < 0.15, "low rate {low_rate}");
        assert!((high_rate - 6.92).abs() / 6.92 < 0.15, "high rate {high_rate}");
        // Paper proportions: RD dominates, PD sparse.
        let counts = low.counts_by_app();
        assert!(counts["range_detection"] > counts["wifi_tx"]);
        assert!(counts["wifi_tx"] >= counts["pulse_doppler"]);
    }

    #[test]
    fn table2_without_pd() {
        let (lib, _) = standard_library();
        let wl = table2_workload(&lib, 4.0, Duration::from_millis(50), false, 1);
        assert!(!wl.counts_by_app().contains_key("pulse_doppler"));
        assert!(wl.len() > 100);
    }
}
